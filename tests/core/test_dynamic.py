"""Unit tests for dynamic PMBC-Index maintenance (future-work extension)."""

from __future__ import annotations

import random

import pytest

from repro.core import build_index_star, pmbc_index_query
from repro.core.dynamic import DynamicPMBCIndex
from repro.graph.bipartite import BipartiteGraph, Side
from repro.graph.generators import random_bipartite
from repro.mbc.oracle import personalized_max_brute


def _assert_matches_fresh_build(dynamic: DynamicPMBCIndex):
    """Every query on the dynamic index equals a from-scratch build."""
    graph = dynamic.graph()
    fresh = build_index_star(graph)
    for side in Side:
        for q in range(graph.num_vertices_on(side)):
            for tau_u, tau_l in ((1, 1), (2, 2), (3, 1), (1, 3)):
                a = dynamic.query(side, q, tau_u, tau_l)
                b = pmbc_index_query(fresh, side, q, tau_u, tau_l)
                assert (a.num_edges if a else 0) == (
                    b.num_edges if b else 0
                ), (side, q, tau_u, tau_l)


def test_initial_state_matches_static(paper_graph):
    dynamic = DynamicPMBCIndex(paper_graph)
    _assert_matches_fresh_build(dynamic)


def test_insert_edge_updates_answers(paper_graph):
    dynamic = DynamicPMBCIndex(paper_graph)
    u2 = paper_graph.vertex_by_label(Side.UPPER, "u2")
    v4 = paper_graph.vertex_by_label(Side.LOWER, "v4")
    # Before: the (2x4) {u1,u4} x {v1..v4} is the best for tau_l=4.
    before = dynamic.query(Side.UPPER, 0, 1, 4)
    assert before.shape == (2, 4)
    rebuilt = dynamic.insert_edge(u2, v4)
    assert rebuilt > 0
    after = dynamic.query(Side.UPPER, 0, 1, 4)
    assert after.shape == (3, 4)  # u2 now joins the block
    _assert_matches_fresh_build(dynamic)


def test_insert_existing_edge_is_noop(paper_graph):
    dynamic = DynamicPMBCIndex(paper_graph)
    before = dynamic.trees_rebuilt
    assert dynamic.insert_edge(0, 0) == 0
    assert dynamic.trees_rebuilt == before


def test_delete_edge_updates_answers(paper_graph):
    dynamic = DynamicPMBCIndex(paper_graph)
    u4 = paper_graph.vertex_by_label(Side.UPPER, "u4")
    v3 = paper_graph.vertex_by_label(Side.LOWER, "v3")
    assert dynamic.query(Side.UPPER, 0, 1, 1).shape == (4, 3)
    dynamic.delete_edge(u4, v3)
    # The 4x3 block loses u4; best for u1 becomes 3x3 or 5x2 (10 edges).
    result = dynamic.query(Side.UPPER, 0, 1, 1)
    assert result.num_edges == 10
    _assert_matches_fresh_build(dynamic)


def test_delete_missing_edge_is_free_noop(paper_graph):
    dynamic = DynamicPMBCIndex(paper_graph)
    u1 = paper_graph.vertex_by_label(Side.UPPER, "u1")
    v5 = paper_graph.vertex_by_label(Side.LOWER, "v5")
    before = dynamic.trees_rebuilt
    assert dynamic.delete_edge(u1, v5) == 0
    assert dynamic.trees_rebuilt == before
    assert dynamic.noop_updates == 1
    _assert_matches_fresh_build(dynamic)


def test_insert_extends_layers(paper_graph):
    dynamic = DynamicPMBCIndex(paper_graph)
    new_upper = paper_graph.num_upper + 1
    new_lower = paper_graph.num_lower
    dynamic.insert_edge(new_upper, new_lower)
    assert dynamic.has_edge(new_upper, new_lower)
    result = dynamic.query(Side.UPPER, new_upper, 1, 1)
    assert result is not None
    assert result.shape == (1, 1)
    # The id gap created an isolated vertex with an empty tree.
    assert dynamic.query(Side.UPPER, paper_graph.num_upper, 1, 1) is None


def test_compact_removes_stranded_bicliques(paper_graph):
    dynamic = DynamicPMBCIndex(paper_graph)
    u4 = paper_graph.vertex_by_label(Side.UPPER, "u4")
    for v_name in ("v1", "v2", "v3", "v4"):
        dynamic.delete_edge(
            u4, paper_graph.vertex_by_label(Side.LOWER, v_name)
        )
    removed = dynamic.compact()
    assert removed >= 0
    _assert_matches_fresh_build(dynamic)
    # Compaction twice is a no-op.
    assert dynamic.compact() == 0


def test_randomized_update_sequence_stays_correct():
    rng = random.Random(5)
    graph = random_bipartite(7, 7, 0.4, seed=5)
    dynamic = DynamicPMBCIndex(graph)
    present = set(graph.edges())
    absent = {
        (u, v)
        for u in range(graph.num_upper)
        for v in range(graph.num_lower)
    } - present
    for step in range(12):
        if absent and (not present or rng.random() < 0.5):
            edge = rng.choice(sorted(absent))
            dynamic.insert_edge(*edge)
            absent.discard(edge)
            present.add(edge)
        else:
            edge = rng.choice(sorted(present))
            dynamic.delete_edge(*edge)
            present.discard(edge)
            absent.add(edge)
    current = dynamic.graph()
    for side in Side:
        for q in range(current.num_vertices_on(side)):
            if current.degree(side, q) == 0:
                assert dynamic.query(side, q, 1, 1) is None
                continue
            for tau_u, tau_l in ((1, 1), (2, 2)):
                got = dynamic.query(side, q, tau_u, tau_l)
                expected = personalized_max_brute(
                    current, side, q, tau_u, tau_l
                )
                got_size = got.num_edges if got else 0
                exp_size = (
                    len(expected[0]) * len(expected[1]) if expected else 0
                )
                assert got_size == exp_size, (side, q, tau_u, tau_l)


def test_apply_updates_batch(paper_graph):
    dynamic = DynamicPMBCIndex(paper_graph)
    u2 = paper_graph.vertex_by_label(Side.UPPER, "u2")
    u4 = paper_graph.vertex_by_label(Side.UPPER, "u4")
    v3 = paper_graph.vertex_by_label(Side.LOWER, "v3")
    v4 = paper_graph.vertex_by_label(Side.LOWER, "v4")
    rebuilt = dynamic.apply_updates(
        [("insert", u2, v4), ("delete", u4, v3)]
    )
    assert rebuilt > 0
    assert dynamic.has_edge(u2, v4)
    assert not dynamic.has_edge(u4, v3)
    _assert_matches_fresh_build(dynamic)


def test_apply_updates_batched_vs_sequential(paper_graph):
    batched = DynamicPMBCIndex(paper_graph)
    sequential = DynamicPMBCIndex(paper_graph)
    updates = [("insert", 1, 3), ("insert", 2, 4), ("delete", 0, 0)]
    batch_rebuilds = batched.apply_updates(updates)
    seq_rebuilds = 0
    for action, u, v in updates:
        if action == "insert":
            seq_rebuilds += sequential.insert_edge(u, v)
        else:
            seq_rebuilds += sequential.delete_edge(u, v)
    # Batching rebuilds the affected union once.
    assert batch_rebuilds <= seq_rebuilds
    for side in Side:
        for q in range(batched.num_vertices_on(side)):
            a = batched.query(side, q, 1, 1)
            b = sequential.query(side, q, 1, 1)
            assert (a.num_edges if a else 0) == (b.num_edges if b else 0)


def test_delete_vertex(paper_graph):
    dynamic = DynamicPMBCIndex(paper_graph)
    u4 = paper_graph.vertex_by_label(Side.UPPER, "u4")
    rebuilt = dynamic.delete_vertex(Side.UPPER, u4)
    assert rebuilt > 0
    assert dynamic.query(Side.UPPER, u4, 1, 1) is None
    # Both the 4x3 block and the 5x2 lost u4: u1's best is the 3x3
    # {u1,u2,u3} x {v1,v2,v3} with 9 edges.
    assert dynamic.query(Side.UPPER, 0, 1, 1).num_edges == 9
    _assert_matches_fresh_build(dynamic)
    # Deleting again is a no-op.
    assert dynamic.delete_vertex(Side.UPPER, u4) == 0
    with pytest.raises(ValueError):
        dynamic.delete_vertex(Side.UPPER, 99)


def test_insert_vertex(paper_graph):
    dynamic = DynamicPMBCIndex(paper_graph)
    v1 = paper_graph.vertex_by_label(Side.LOWER, "v1")
    v2 = paper_graph.vertex_by_label(Side.LOWER, "v2")
    v3 = paper_graph.vertex_by_label(Side.LOWER, "v3")
    new_id, rebuilt = dynamic.insert_vertex(Side.UPPER, [v1, v2, v3])
    assert new_id == paper_graph.num_upper
    assert rebuilt > 0
    # The new clone joins the 4x3 block: now 5x3.
    result = dynamic.query(Side.UPPER, new_id, 1, 1)
    assert result.shape == (5, 3)
    _assert_matches_fresh_build(dynamic)
    # Isolated insert touches nothing.
    lonely, rebuilt = dynamic.insert_vertex(Side.LOWER, [])
    assert rebuilt == 0
    assert dynamic.query(Side.LOWER, lonely, 1, 1) is None


def test_apply_updates_noops_are_free_and_counted(paper_graph):
    dynamic = DynamicPMBCIndex(paper_graph)
    before = dynamic.trees_rebuilt
    # Inserting a present edge and deleting an absent one are no-ops:
    # no bounds work, no rebuilds, just a counter bump.
    rebuilt = dynamic.apply_updates([("insert", 0, 0), ("delete", 0, 5)])
    assert rebuilt == 0
    assert dynamic.trees_rebuilt == before
    assert dynamic.noop_updates == 2
    if dynamic._inc is not None:
        assert dynamic._inc.updates == 0
    with pytest.raises(ValueError):
        dynamic.apply_updates([("upsert", 0, 0)])
    _assert_matches_fresh_build(dynamic)


def test_bounds_repaired_incrementally_never_recomputed(
    paper_graph, monkeypatch
):
    import repro.corenum.bounds as bounds_module
    from repro.core import dynamic as dynamic_module

    calls = []
    real = bounds_module.compute_bounds

    def counting(graph, decomposition=None):
        calls.append(1)
        return real(graph, decomposition)

    monkeypatch.setattr(bounds_module, "compute_bounds", counting)
    assert not hasattr(dynamic_module, "compute_bounds")
    dynamic = DynamicPMBCIndex(paper_graph)
    dynamic.delete_edge(0, 0)
    dynamic.insert_edge(0, 0)
    # Both directions repair the live bounds in place: compute_bounds
    # never runs, yet the bounds stay exactly equal to a recompute.
    assert calls == []
    assert dynamic._inc.updates == 2
    dynamic._inc.verify()
    _assert_matches_fresh_build(dynamic)


def test_static_view_exposes_stats(paper_graph):
    dynamic = DynamicPMBCIndex(paper_graph)
    view = dynamic.index
    assert view.num_bicliques > 0
    assert view.num_tree_nodes > 0


def test_without_core_bounds(paper_graph):
    dynamic = DynamicPMBCIndex(paper_graph, use_core_bounds=False)
    assert dynamic.query(Side.UPPER, 0, 1, 1).shape == (4, 3)
    dynamic.insert_edge(1, 3)
    _assert_matches_fresh_build(dynamic)
