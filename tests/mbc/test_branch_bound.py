"""Unit tests for the Branch&Bound procedure."""

from __future__ import annotations

from repro.graph.bipartite import Side
from repro.graph.generators import complete_bipartite, random_bipartite
from repro.graph.subgraph import two_hop_subgraph
from repro.mbc.branch_bound import BranchBoundConfig, branch_and_bound
from repro.mbc.oracle import max_biclique_brute


def _local(graph, q=0):
    return two_hop_subgraph(graph, Side.UPPER, q)


def test_finds_maximum_on_complete_bipartite():
    local = _local(complete_bipartite(3, 4))
    result = branch_and_bound(local, BranchBoundConfig())
    assert result is not None
    upper, lower = result
    assert len(upper) * len(lower) == 12


def test_respects_min_constraints(paper_graph):
    def u(name):
        return paper_graph.vertex_by_label(Side.UPPER, name)

    local = _local(paper_graph, u("u1"))
    result = branch_and_bound(local, BranchBoundConfig(tau_p=5, tau_w=1))
    upper, lower = result
    assert len(upper) >= 5
    assert len(upper) * len(lower) == 10


def test_returns_none_when_infeasible(paper_graph):
    local = _local(paper_graph, 0)
    assert branch_and_bound(local, BranchBoundConfig(tau_p=8, tau_w=1)) is None


def test_initial_best_size_filters_results(paper_graph):
    local = _local(paper_graph, 0)
    # The optimum inside H_{u1} is 12 edges; a bar of 12 yields nothing.
    assert branch_and_bound(local, BranchBoundConfig(), 12) is None
    result = branch_and_bound(local, BranchBoundConfig(), 11)
    assert result is not None
    upper, lower = result
    assert len(upper) * len(lower) == 12


def test_results_match_oracle_random():
    for seed in range(10):
        graph = random_bipartite(7, 7, 0.5, seed=seed)
        for q in range(graph.num_upper):
            if graph.degree(Side.UPPER, q) == 0:
                continue
            local = _local(graph, q)
            for tau_p, tau_w in ((1, 1), (2, 2), (3, 1)):
                got = branch_and_bound(
                    local, BranchBoundConfig(tau_p=tau_p, tau_w=tau_w)
                )
                from repro.graph.bipartite import BipartiteGraph

                sub = BipartiteGraph(
                    [sorted(ns) for ns in local.adj_upper],
                    num_lower=local.num_lower,
                )
                expected = max_biclique_brute(sub, tau_p, tau_w)
                got_size = len(got[0]) * len(got[1]) if got else 0
                exp_size = (
                    len(expected[0]) * len(expected[1]) if expected else 0
                )
                assert got_size == exp_size


def test_anchored_results_contain_protected_vertex(paper_graph):
    for q in range(paper_graph.num_upper):
        local = _local(paper_graph, q)
        config = BranchBoundConfig(protected_upper=local.q_local)
        result = branch_and_bound(local, config)
        assert result is not None
        assert local.q_local in result[0]


def test_lemma6_caps_limit_shapes(paper_graph):
    def u(name):
        return paper_graph.vertex_by_label(Side.UPPER, name)

    local = _local(paper_graph, u("u1"))
    # Cap the lower side at 2: best is the 5x2.
    result = branch_and_bound(local, BranchBoundConfig(max_w=2))
    upper, lower = result
    assert len(lower) <= 2
    assert len(upper) * len(lower) == 10
    # Cap the upper side at 2: best is the 2x4.
    result = branch_and_bound(local, BranchBoundConfig(max_p=2))
    upper, lower = result
    assert len(upper) <= 2
    assert len(upper) * len(lower) == 8


def test_no_maximality_pruning_still_correct(paper_graph):
    local = _local(paper_graph, 0)
    with_pruning = branch_and_bound(local, BranchBoundConfig())
    without = branch_and_bound(
        local, BranchBoundConfig(prune_non_maximal=False)
    )
    assert (
        len(with_pruning[0]) * len(with_pruning[1])
        == len(without[0]) * len(without[1])
    )


def test_bound_hooks_never_change_answers(paper_graph):
    """Exact hooks derived from the graph must preserve optimality."""
    from repro.corenum.bounds import compute_bounds

    bounds = compute_bounds(paper_graph)
    for q in range(paper_graph.num_upper):
        local = _local(paper_graph, q)
        lower_globals = local.lower_globals
        upper_globals = local.upper_globals

        def lower_hook(v, k):
            return bounds.own_side_at_least(Side.LOWER, lower_globals[v], k)

        def upper_hook(u, i):
            return bounds.own_side_at_most(Side.UPPER, upper_globals[u], i)

        plain = branch_and_bound(local, BranchBoundConfig())
        hooked = branch_and_bound(
            local,
            BranchBoundConfig(
                lower_bound_at_least=lower_hook,
                upper_bound_at_most=upper_hook,
                protected_upper=local.q_local,
                prune_non_maximal=False,
            ),
        )
        plain_size = len(plain[0]) * len(plain[1]) if plain else 0
        hooked_size = len(hooked[0]) * len(hooked[1]) if hooked else 0
        assert plain_size == hooked_size
