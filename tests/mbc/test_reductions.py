"""Unit tests for one-hop/two-hop reductions."""

from __future__ import annotations

from repro.graph.bipartite import Side
from repro.graph.subgraph import two_hop_subgraph
from repro.mbc.oracle import max_biclique_brute
from repro.mbc.reductions import reduce_preserving_maximum


def _as_local(graph, q=0):
    return two_hop_subgraph(graph, Side.UPPER, q)


def test_one_hop_removes_low_degree(paper_graph):
    def u(name):
        return paper_graph.vertex_by_label(Side.UPPER, name)

    local = two_hop_subgraph(paper_graph, Side.UPPER, u("u1"))
    reduced = reduce_preserving_maximum(local, tau_p=2, tau_w=3, use_two_hop=False)
    # u6 and u7 have a single neighbor (v4) inside H_{u1}: gone at tau_w=3.
    kept = {
        paper_graph.label(Side.UPPER, g) for g in reduced.upper_globals
    }
    assert "u6" not in kept and "u7" not in kept
    assert "u1" in kept


def test_reduction_preserves_all_large_bicliques(paper_graph):
    """Any biclique of the required shape survives the reduction."""
    for q in range(paper_graph.num_upper):
        local = two_hop_subgraph(paper_graph, Side.UPPER, q)
        for tau_p, tau_w in ((1, 1), (2, 2), (3, 2), (2, 3)):
            reduced = reduce_preserving_maximum(local, tau_p, tau_w)
            # Brute force on the reduced vs unreduced graph: maxima under
            # the constraints must agree.
            from repro.graph.bipartite import BipartiteGraph

            def to_graph(lg):
                return BipartiteGraph(
                    [sorted(ns) for ns in lg.adj_upper],
                    num_lower=lg.num_lower,
                )

            full = max_biclique_brute(to_graph(local), tau_p, tau_w)
            red = (
                max_biclique_brute(to_graph(reduced), tau_p, tau_w)
                if reduced.num_upper and reduced.num_lower
                else None
            )
            full_size = len(full[0]) * len(full[1]) if full else 0
            red_size = len(red[0]) * len(red[1]) if red else 0
            assert full_size == red_size, (q, tau_p, tau_w)


def test_reduction_keeps_anchor_when_feasible(paper_graph):
    local = two_hop_subgraph(paper_graph, Side.UPPER, 0)
    reduced = reduce_preserving_maximum(local, tau_p=1, tau_w=1)
    assert reduced.q_local is not None
    assert reduced.upper_globals[reduced.q_local] == 0


def test_reduction_drops_anchor_when_infeasible(paper_graph):
    def u(name):
        return paper_graph.vertex_by_label(Side.UPPER, name)

    local = two_hop_subgraph(paper_graph, Side.UPPER, u("u7"))
    # u7 has degree 3; with tau_w=4 it cannot be in any result.
    reduced = reduce_preserving_maximum(local, tau_p=1, tau_w=4)
    assert reduced.q_local is None


def test_two_hop_reduction_is_stronger(medium_planted_graph):
    """With tight constraints the wedge rule removes extra vertices."""
    graph = medium_planted_graph
    pruned_more = 0
    for q in range(min(graph.num_upper, 15)):
        local = two_hop_subgraph(graph, Side.UPPER, q)
        without = reduce_preserving_maximum(
            local, tau_p=3, tau_w=3, use_two_hop=False
        )
        with_wedge = reduce_preserving_maximum(
            local, tau_p=3, tau_w=3, use_two_hop=True
        )
        assert with_wedge.num_upper <= without.num_upper
        assert with_wedge.num_lower <= without.num_lower
        if (
            with_wedge.num_upper < without.num_upper
            or with_wedge.num_lower < without.num_lower
        ):
            pruned_more += 1
    assert pruned_more >= 1


def test_wedge_budget_skips_two_hop(skewed_graph):
    local = two_hop_subgraph(skewed_graph, Side.UPPER, 0)
    cheap = reduce_preserving_maximum(
        local, tau_p=2, tau_w=2, use_two_hop=True, wedge_budget=0
    )
    plain = reduce_preserving_maximum(local, tau_p=2, tau_w=2, use_two_hop=False)
    assert cheap.num_upper == plain.num_upper
    assert cheap.num_lower == plain.num_lower
