"""Unit tests for the greedy initial solution."""

from __future__ import annotations

from repro.graph.bipartite import Side
from repro.graph.generators import complete_bipartite
from repro.graph.subgraph import two_hop_subgraph
from repro.mbc.greedy import greedy_biclique


def _local_for(graph, side, name_to_id, name):
    return two_hop_subgraph(graph, side, name_to_id(name))


def test_greedy_returns_valid_biclique(paper_graph):
    def u(name):
        return paper_graph.vertex_by_label(Side.UPPER, name)

    local = two_hop_subgraph(paper_graph, Side.UPPER, u("u1"))
    result = greedy_biclique(local)
    assert result is not None
    upper, lower = result
    assert local.check_biclique(upper, lower)
    assert local.q_local in upper


def test_greedy_respects_constraints(paper_graph):
    def u(name):
        return paper_graph.vertex_by_label(Side.UPPER, name)

    local = two_hop_subgraph(paper_graph, Side.UPPER, u("u7"))
    # u7 has degree 3 so no biclique with 4 lower vertices exists.
    assert greedy_biclique(local, tau_p=1, tau_w=4) is None


def test_greedy_seed_quality_on_paper_graph(paper_graph):
    """Greedy should reach a decent fraction of the optimum (12 edges)."""

    def u(name):
        return paper_graph.vertex_by_label(Side.UPPER, name)

    local = two_hop_subgraph(paper_graph, Side.UPPER, u("u1"))
    upper, lower = greedy_biclique(local)
    assert len(upper) * len(lower) >= 8


def test_greedy_on_complete_bipartite_is_optimal():
    graph = complete_bipartite(4, 5)
    local = two_hop_subgraph(graph, Side.UPPER, 0)
    upper, lower = greedy_biclique(local)
    assert len(upper) * len(lower) == 20


def test_greedy_unanchored():
    graph = complete_bipartite(3, 3)
    local = two_hop_subgraph(graph, Side.UPPER, 0)
    local.q_local = None  # exercise the unanchored start
    result = greedy_biclique(local)
    assert result is not None
    upper, lower = result
    assert len(upper) * len(lower) == 9


def test_greedy_empty_graph(paper_graph):
    local = two_hop_subgraph(paper_graph, Side.UPPER, 0)
    empty = local.restrict([], [])
    assert greedy_biclique(empty) is None


def test_greedy_anchored_on_lower_side_query(paper_graph):
    def v(name):
        return paper_graph.vertex_by_label(Side.LOWER, name)

    local = two_hop_subgraph(paper_graph, Side.LOWER, v("v1"))
    result = greedy_biclique(local)
    assert result is not None
    upper, lower = result
    assert local.q_local in upper
    assert local.check_biclique(upper, lower)
