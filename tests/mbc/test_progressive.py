"""Unit tests for the progressive bounding framework."""

from __future__ import annotations

import pytest

from repro.corenum.bounds import compute_bounds
from repro.graph.bipartite import Side
from repro.graph.generators import complete_bipartite, random_bipartite
from repro.graph.subgraph import two_hop_subgraph
from repro.mbc.oracle import personalized_max_brute
from repro.mbc.progressive import SearchOptions, maximum_biclique_local


def _local(graph, q=0, side=Side.UPPER):
    return two_hop_subgraph(graph, side, q)


def test_validates_constraints(paper_graph):
    local = _local(paper_graph)
    with pytest.raises(ValueError):
        maximum_biclique_local(local, 0, 1)
    with pytest.raises(ValueError):
        maximum_biclique_local(local, 1, 0)


def test_matches_oracle_without_options():
    for seed in range(6):
        graph = random_bipartite(7, 7, 0.45, seed=seed)
        for q in range(graph.num_upper):
            if graph.degree(Side.UPPER, q) == 0:
                continue
            local = _local(graph, q)
            got = maximum_biclique_local(local, 1, 1)
            expected = personalized_max_brute(graph, Side.UPPER, q, 1, 1)
            got_size = len(got[0]) * len(got[1]) if got else 0
            exp_size = (
                len(expected[0]) * len(expected[1]) if expected else 0
            )
            assert got_size == exp_size


def test_matches_oracle_with_bounds():
    for seed in range(6):
        graph = random_bipartite(7, 7, 0.45, seed=seed + 50)
        bounds = compute_bounds(graph)
        options = SearchOptions(bounds=bounds)
        for q in range(graph.num_upper):
            if graph.degree(Side.UPPER, q) == 0:
                continue
            local = _local(graph, q)
            got = maximum_biclique_local(local, 2, 2, options=options)
            expected = personalized_max_brute(graph, Side.UPPER, q, 2, 2)
            got_size = len(got[0]) * len(got[1]) if got else 0
            exp_size = (
                len(expected[0]) * len(expected[1]) if expected else 0
            )
            assert got_size == exp_size


def test_seed_is_returned_when_optimal(paper_graph):
    def u(name):
        return paper_graph.vertex_by_label(Side.UPPER, name)

    local = _local(paper_graph, u("u1"))
    # Feed the known optimum (local ids of the 4x3 block) as seed.
    names_u = {"u1", "u2", "u3", "u4"}
    names_v = {"v1", "v2", "v3"}
    seed_upper = frozenset(
        i
        for i, g in enumerate(local.upper_globals)
        if paper_graph.label(Side.UPPER, g) in names_u
    )
    seed_lower = frozenset(
        i
        for i, g in enumerate(local.lower_globals)
        if paper_graph.label(Side.LOWER, g) in names_v
    )
    result = maximum_biclique_local(local, 1, 1, seed=(seed_upper, seed_lower))
    assert result == (seed_upper, seed_lower)


def test_infeasible_constraints_return_seedless_none(paper_graph):
    local = _local(paper_graph, 0)
    assert maximum_biclique_local(local, 1, 40) is None
    assert maximum_biclique_local(local, 40, 1) is None


def test_floor_equals_constraint_still_searches():
    """Regression: when τ_L equals the max upper degree the single
    remaining round must still run (the paper's `while τ_L^k > τ_L`
    formulation would skip it)."""
    graph = complete_bipartite(3, 4)
    local = _local(graph, 0)
    result = maximum_biclique_local(local, 1, 4)
    assert result is not None
    upper, lower = result
    assert len(lower) == 4
    assert len(upper) * len(lower) == 12


def test_anchored_answer_contains_anchor(medium_planted_graph):
    graph = medium_planted_graph
    bounds = compute_bounds(graph)
    for q in range(0, graph.num_upper, 7):
        local = _local(graph, q)
        for options in (SearchOptions(), SearchOptions(bounds=bounds)):
            result = maximum_biclique_local(local, 1, 1, options=options)
            assert result is not None
            assert local.q_local in result[0]


def test_lemma6_caps_agree_with_uncapped(paper_graph):
    """Caps are redundant for correctness: results must agree in size
    whenever the true answer obeys the caps."""

    def u(name):
        return paper_graph.vertex_by_label(Side.UPPER, name)

    local = _local(paper_graph, u("u1"))
    # Child of the (1,1) root via condition (1): tau_p = 5, answer 5x2,
    # so max_w = |L(parent)| - 1 = 2 must not change anything.
    plain = maximum_biclique_local(local, 5, 1)
    capped = maximum_biclique_local(
        local, 5, 1, options=SearchOptions(max_w=2)
    )
    assert (
        len(plain[0]) * len(plain[1]) == len(capped[0]) * len(capped[1]) == 10
    )
