"""Unit tests for the brute-force oracles themselves."""

from __future__ import annotations

import pytest

from repro.graph.bipartite import Side
from repro.graph.generators import complete_bipartite, star
from repro.mbc.oracle import (
    all_closed_bicliques,
    max_biclique_brute,
    personalized_max_brute,
)


def test_closed_bicliques_are_bicliques(paper_graph):
    for upper, lower in all_closed_bicliques(paper_graph):
        for u in upper:
            assert lower <= paper_graph.neighbor_set(Side.UPPER, u)


def test_closed_bicliques_complete_graph():
    graph = complete_bipartite(2, 3)
    pairs = all_closed_bicliques(graph)
    # Every nonempty subset of the smaller (upper) side appears.
    assert len(pairs) == 3  # {0}, {1}, {0,1}
    sizes = sorted(len(u) * len(l) for u, l in pairs)
    assert sizes == [3, 3, 6]


def test_max_biclique_brute_basics(paper_graph):
    result = max_biclique_brute(paper_graph, 1, 1)
    assert result is not None
    upper, lower = result
    assert len(upper) * len(lower) == 12  # the 4x3 block
    assert max_biclique_brute(paper_graph, 6, 1) is None


def test_max_biclique_with_constraints(paper_graph):
    upper, lower = max_biclique_brute(paper_graph, 5, 1)
    assert (len(upper), len(lower)) == (5, 2)


def test_personalized_brute_on_star():
    graph = star(5)
    result = personalized_max_brute(graph, Side.UPPER, 0, 1, 1)
    assert result is not None
    assert result[0] == frozenset({0})
    assert len(result[1]) == 5
    # Leaves share the center, so |L| >= 2 is feasible even for a leaf.
    result = personalized_max_brute(graph, Side.LOWER, 2, 1, 2)
    assert result == (frozenset({0}), frozenset(range(5)))
    # But no biclique has two upper vertices.
    assert personalized_max_brute(graph, Side.LOWER, 2, 2, 1) is None


def test_personalized_brute_contains_query(paper_graph):
    for q in range(paper_graph.num_upper):
        result = personalized_max_brute(paper_graph, Side.UPPER, q, 1, 1)
        assert result is not None
        assert q in result[0]
    for q in range(paper_graph.num_lower):
        result = personalized_max_brute(paper_graph, Side.LOWER, q, 1, 1)
        assert result is not None
        assert q in result[1]


def test_personalized_brute_paper_claims(paper_graph):
    def u(name):
        return paper_graph.vertex_by_label(Side.UPPER, name)

    result = personalized_max_brute(paper_graph, Side.UPPER, u("u1"), 1, 1)
    assert (len(result[0]), len(result[1])) == (4, 3)
    result = personalized_max_brute(paper_graph, Side.UPPER, u("u1"), 5, 1)
    assert (len(result[0]), len(result[1])) == (5, 2)
    result = personalized_max_brute(paper_graph, Side.UPPER, u("u7"), 1, 1)
    assert (len(result[0]), len(result[1])) == (3, 3)


def test_brute_force_size_guard():
    graph = complete_bipartite(25, 30)
    with pytest.raises(ValueError):
        all_closed_bicliques(graph)
