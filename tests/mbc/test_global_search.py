"""Unit tests for global (non-personalized) maximum biclique search."""

from __future__ import annotations

import pytest

from repro.corenum.bounds import compute_bounds
from repro.graph.bipartite import Side
from repro.graph.generators import complete_bipartite, random_bipartite, star
from repro.mbc import maximum_biclique, whole_graph_view
from repro.mbc.oracle import max_biclique_brute


def test_whole_graph_view_roundtrip(paper_graph):
    view = whole_graph_view(paper_graph)
    assert view.num_upper == paper_graph.num_upper
    assert view.num_lower == paper_graph.num_lower
    assert view.num_edges == paper_graph.num_edges
    assert view.q_local is None
    assert view.upper_side is Side.UPPER


def test_maximum_biclique_paper_graph(paper_graph):
    best = maximum_biclique(paper_graph)
    assert best.num_edges == 12
    assert best.shape == (4, 3)
    constrained = maximum_biclique(paper_graph, 5, 1)
    assert constrained.shape == (5, 2)
    assert maximum_biclique(paper_graph, 6, 1) is None


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_matches_brute_force(seed):
    graph = random_bipartite(7, 7, 0.5, seed=seed)
    for tau_u, tau_l in ((1, 1), (2, 2), (3, 2)):
        got = maximum_biclique(graph, tau_u, tau_l)
        expected = max_biclique_brute(graph, tau_u, tau_l)
        got_size = got.num_edges if got else 0
        exp_size = len(expected[0]) * len(expected[1]) if expected else 0
        assert got_size == exp_size


def test_with_bounds_matches_plain(paper_graph):
    bounds = compute_bounds(paper_graph)
    plain = maximum_biclique(paper_graph, 2, 2)
    fast = maximum_biclique(paper_graph, 2, 2, bounds=bounds)
    assert plain.num_edges == fast.num_edges


def test_degenerate_graphs():
    assert maximum_biclique(complete_bipartite(3, 3)).num_edges == 9
    s = maximum_biclique(star(4))
    assert s.shape == (1, 4)
    assert maximum_biclique(star(4), 2, 1) is None
