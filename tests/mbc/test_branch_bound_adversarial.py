"""Adversarial Branch&Bound cases targeting pruning-rule interplay."""

from __future__ import annotations

import random

import pytest

from repro.corenum.bounds import compute_bounds
from repro.graph.bipartite import BipartiteGraph, Side
from repro.graph.builders import from_edges
from repro.graph.subgraph import two_hop_subgraph
from repro.mbc.branch_bound import BranchBoundConfig, branch_and_bound
from repro.mbc.oracle import personalized_max_brute
from repro.mbc.progressive import SearchOptions, maximum_biclique_local


def k_2_10_plus_tail():
    """The K_{2,10} counterexample to the paper's z← formula.

    A 2x10 biclique plus a small decoy: with the paper's literal
    prefix-bound indexing, upper vertices of the 2x10 would be pruned
    once |P| shrinks to 2 and a 6-edge incumbent exists.  Our
    region-restricted bounds must keep them.
    """
    edges = []
    for u in range(2):
        for v in range(10):
            edges.append((f"a{u}", f"b{v}"))
    # Decoy 2x3 biclique sharing one lower vertex.
    for u in range(2):
        for v in range(3):
            edges.append((f"c{u}", f"d{v}"))
    edges.append(("a0", "d0"))
    return from_edges(edges)


def test_k210_counterexample_answers_survive_bounds():
    graph = k_2_10_plus_tail()
    bounds = compute_bounds(graph)
    q = graph.vertex_by_label(Side.UPPER, "a0")
    local = two_hop_subgraph(graph, Side.UPPER, q)
    result = maximum_biclique_local(
        local, 1, 1, options=SearchOptions(bounds=bounds)
    )
    assert result is not None
    assert len(result[0]) * len(result[1]) == 20
    expected = personalized_max_brute(graph, Side.UPPER, q, 1, 1)
    assert len(expected[0]) * len(expected[1]) == 20


@pytest.mark.parametrize("seed", range(8))
def test_all_accelerators_together_match_oracle(seed):
    """Bounds + caps + wedge + seeds all at once, against brute force."""
    rng = random.Random(seed)
    edges = set()
    for __ in range(rng.randint(8, 30)):
        edges.add((rng.randrange(7), rng.randrange(7)))
    graph = from_edges(sorted(edges))
    bounds = compute_bounds(graph)
    for q in range(graph.num_upper):
        if graph.degree(Side.UPPER, q) == 0:
            continue
        expected = personalized_max_brute(graph, Side.UPPER, q, 1, 1)
        exp_size = len(expected[0]) * len(expected[1]) if expected else 0
        if exp_size == 0:
            continue
        a, b = len(expected[0]), len(expected[1])
        local = two_hop_subgraph(graph, Side.UPPER, q)
        # Caps exactly at the answer's shape must not lose it.
        result = maximum_biclique_local(
            local,
            1,
            1,
            options=SearchOptions(bounds=bounds, max_p=a, max_w=b),
        )
        assert result is not None
        assert len(result[0]) * len(result[1]) == exp_size


def test_tau_p_filter_interacts_with_hooks():
    """An exact hook must never push P below tau_p for the optimum."""
    graph = k_2_10_plus_tail()
    bounds = compute_bounds(graph)
    q = graph.vertex_by_label(Side.UPPER, "a0")
    local = two_hop_subgraph(graph, Side.UPPER, q)
    lower_globals = local.lower_globals
    upper_globals = local.upper_globals

    def lower_hook(v, k):
        return bounds.own_side_at_least(Side.LOWER, lower_globals[v], k)

    def upper_hook(u, i):
        return bounds.own_side_at_most(Side.UPPER, upper_globals[u], i)

    config = BranchBoundConfig(
        tau_p=2,
        tau_w=2,
        lower_bound_at_least=lower_hook,
        upper_bound_at_most=upper_hook,
        protected_upper=local.q_local,
        prune_non_maximal=False,
    )
    # Incumbent of 6 edges (the decoy's size): the 2x10 must still win.
    result = branch_and_bound(local, config, initial_best_size=6)
    assert result is not None
    assert len(result[0]) * len(result[1]) == 20


def test_protected_anchor_never_pruned_by_hostile_hook():
    """Even a hook claiming the anchor is useless must not remove it."""
    graph = from_edges([("q", "x"), ("q", "y"), ("a", "x"), ("a", "y")])
    q = graph.vertex_by_label(Side.UPPER, "q")
    local = two_hop_subgraph(graph, Side.UPPER, q)

    def zero_hook(u, i):
        return 0  # hostile: claims nothing is worth keeping

    config = BranchBoundConfig(
        upper_bound_at_most=zero_hook,
        protected_upper=local.q_local,
        prune_non_maximal=False,
    )
    result = branch_and_bound(local, config)
    assert result is not None
    assert local.q_local in result[0]


def test_zero_budget_wedge_and_no_maximality_still_exact():
    graph = BipartiteGraph(
        [[0, 1, 2], [0, 1, 2], [0, 1], [2, 3]], num_lower=4
    )
    local = two_hop_subgraph(graph, Side.UPPER, 0)
    result = maximum_biclique_local(
        local,
        1,
        1,
        options=SearchOptions(
            use_two_hop_reduction=False, prune_non_maximal=False
        ),
    )
    expected = personalized_max_brute(graph, Side.UPPER, 0, 1, 1)
    assert len(result[0]) * len(result[1]) == len(expected[0]) * len(
        expected[1]
    )
