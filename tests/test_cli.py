"""Unit tests for the pmbc command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.graph.generators import paper_example_graph
from repro.graph.io import write_edge_list, write_konect


@pytest.fixture
def edges_file(tmp_path):
    path = tmp_path / "graph.txt"
    write_edge_list(paper_example_graph(), path)
    return str(path)


@pytest.fixture
def konect_file(tmp_path):
    path = tmp_path / "out.graph"
    write_konect(paper_example_graph(), path)
    return str(path)


def test_build_and_query(edges_file, tmp_path, capsys):
    index_path = str(tmp_path / "index.json")
    assert main(["build", edges_file, "-o", index_path]) == 0
    out = capsys.readouterr().out
    assert "built PMBC-Index" in out

    code = main(
        [
            "query",
            edges_file,
            "--index",
            index_path,
            "--side",
            "upper",
            "--label",
            "u1",
            "--tau-u",
            "1",
            "--tau-l",
            "1",
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["shape"] == [4, 3]
    assert "u1" in payload["upper"]


def test_online_query_without_index(edges_file, capsys):
    code = main(
        ["query", edges_file, "--side", "upper", "--label", "u7"]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["shape"] == [3, 3]


def test_query_no_result(edges_file, capsys):
    code = main(
        [
            "query",
            edges_file,
            "--side",
            "upper",
            "--label",
            "u1",
            "--tau-u",
            "6",
        ]
    )
    assert code == 1
    assert "no biclique" in capsys.readouterr().out


def test_query_requires_vertex_or_label(edges_file, capsys):
    code = main(["query", edges_file, "--side", "upper"])
    assert code == 2


def test_konect_input(konect_file, capsys):
    code = main(
        ["query", konect_file, "--konect", "--side", "upper", "--vertex", "0"]
    )
    assert code == 0


def test_stats(edges_file, tmp_path, capsys):
    index_path = str(tmp_path / "index.json")
    main(["build", edges_file, "-o", index_path])
    capsys.readouterr()
    assert main(["stats", edges_file, "--index", index_path]) == 0
    out = capsys.readouterr().out
    assert "|E|=25" in out
    assert "num_bicliques" in out


def test_datasets_listing(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "Writers" in out
    assert "DBLP" in out


def test_invalid_side(edges_file):
    with pytest.raises(SystemExit):
        main(["query", edges_file, "--side", "middle", "--vertex", "0"])


def test_build_without_cost_sharing(edges_file, tmp_path, capsys):
    index_path = str(tmp_path / "index_ic.json")
    assert main(["build", edges_file, "-o", index_path, "--no-cost-sharing"]) == 0


def test_topk_command(edges_file, tmp_path, capsys):
    index_path = str(tmp_path / "index.json")
    main(["build", edges_file, "-o", index_path])
    capsys.readouterr()
    code = main(
        [
            "topk",
            edges_file,
            "--index",
            index_path,
            "--side",
            "upper",
            "--label",
            "u1",
            "-k",
            "3",
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload) == 3
    assert payload[0]["edges"] >= payload[1]["edges"] >= payload[2]["edges"]
    assert payload[0]["shape"] == [4, 3]


def test_topk_command_empty(edges_file, tmp_path, capsys):
    index_path = str(tmp_path / "index.json")
    main(["build", edges_file, "-o", index_path])
    capsys.readouterr()
    code = main(
        [
            "topk", edges_file, "--index", index_path,
            "--side", "upper", "--label", "u1", "--tau-u", "6",
        ]
    )
    assert code == 1


def test_datasets_stats_flag(capsys):
    assert main(["datasets", "--stats"]) == 0
    out = capsys.readouterr().out
    assert "deg_U" in out and "hub%" in out


def test_query_missing_index_file_clean_error(edges_file, capsys):
    code = main(
        [
            "query", edges_file, "--index", "/no/such/index.bin",
            "--side", "upper", "--vertex", "0",
        ]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "index.bin" in err
    assert "Traceback" not in err


def test_query_corrupt_binary_index_clean_error(edges_file, tmp_path, capsys):
    from repro.core.serialize import MAGIC

    path = tmp_path / "index.bin"
    path.write_bytes(MAGIC + b"\x01\x02")  # sniffs binary, then truncated
    code = main(
        [
            "query", edges_file, "--index", str(path),
            "--side", "upper", "--vertex", "0",
        ]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "corrupt" in err
    assert "Traceback" not in err


def test_query_corrupt_json_index_clean_error(edges_file, tmp_path, capsys):
    path = tmp_path / "index.json"
    path.write_text("{not valid json")
    code = main(
        [
            "query", edges_file, "--index", str(path),
            "--side", "upper", "--vertex", "0",
        ]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "not a valid PMBC-Index" in err


def test_stats_missing_index_clean_error(edges_file, capsys):
    assert main(["stats", edges_file, "--index", "/missing.json"]) == 2
    assert "error:" in capsys.readouterr().err


def test_serve_parser_defaults():
    from repro.cli import build_parser

    args = build_parser().parse_args(["serve", "edges.txt"])
    assert args.fn.__name__ == "_cmd_serve"
    assert args.port == 8642
    assert args.workers == 8
    assert args.queue_size == 64
    assert args.deadline == 30.0
    assert args.index is None


def test_serve_missing_index_clean_error(edges_file, capsys):
    code = main(["serve", edges_file, "--index", "/no/such.idx"])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_binary_index_build_and_query(edges_file, tmp_path, capsys):
    index_path = str(tmp_path / "index.bin")
    assert main(["build", edges_file, "-o", index_path, "--binary"]) == 0
    capsys.readouterr()
    code = main(
        [
            "query",
            edges_file,
            "--index",
            index_path,
            "--side",
            "upper",
            "--label",
            "u1",
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["shape"] == [4, 3]


# ----------------------------------------------------------------------
# pmbc explain


def test_explain_prints_trace_report(edges_file, capsys):
    code = main(["explain", edges_file, "0", "2", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "two-hop subgraph" in out
    assert "progressive-bounding rounds" in out
    assert "pruning" in out
    assert "answer:" in out


def test_explain_json_output(edges_file, capsys):
    code = main(["explain", edges_file, "0", "2", "2", "--json"])
    assert code == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["meta"]["query"]["vertex"] == 0
    assert summary["counters"]["twohop_extractions"] == 1
    assert "prunes" in summary


def test_explain_with_index(edges_file, tmp_path, capsys):
    index_path = str(tmp_path / "index.json")
    main(["build", edges_file, "-o", index_path])
    capsys.readouterr()
    code = main(["explain", edges_file, "0", "--index", index_path])
    assert code == 0
    assert "index tree nodes visited" in capsys.readouterr().out
    summary_code = main(
        ["explain", edges_file, "0", "--index", index_path, "--json"]
    )
    summary = json.loads(capsys.readouterr().out)
    assert summary_code == 0
    assert summary["counters"]["index_lookups"] == 1
    assert summary["meta"]["backend"] == "index"


def test_explain_no_result_exits_nonzero(edges_file, capsys):
    code = main(["explain", edges_file, "0", "99", "99"])
    assert code == 1
    out = capsys.readouterr().out
    assert "result: none" in out


def test_explain_by_label(edges_file, capsys):
    code = main(["explain", edges_file, "--label", "u1", "--json"])
    assert code == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["meta"]["result"]["shape"] == [4, 3]


def test_query_balanced_objective(edges_file, capsys):
    code = main(
        [
            "query", edges_file, "--side", "upper", "--vertex", "0",
            "--tau-u", "2", "--tau-l", "2", "--objective", "balanced",
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["shape"][0] == payload["shape"][1] >= 2


def test_query_balanced_with_index_is_clean_error(
    edges_file, tmp_path, capsys
):
    index_path = str(tmp_path / "index.json")
    assert main(["build", edges_file, "-o", index_path]) == 0
    capsys.readouterr()
    code = main(
        [
            "query", edges_file, "--index", index_path,
            "--side", "upper", "--vertex", "0",
            "--objective", "balanced",
        ]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "balanced" in err
    assert "--index" in err


def test_query_unknown_objective_rejected(edges_file, capsys):
    with pytest.raises(SystemExit):
        main(
            [
                "query", edges_file, "--side", "upper", "--vertex", "0",
                "--objective", "biplex",
            ]
        )


def test_explain_balanced_objective(edges_file, capsys):
    code = main(
        ["explain", edges_file, "0", "2", "2", "--objective", "balanced"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "objective=balanced" in out
    assert "progressive-bounding rounds" in out


def test_batch_file_balanced_objective(edges_file, tmp_path, capsys):
    batch = tmp_path / "batch.json"
    batch.write_text(
        json.dumps(
            [
                {"side": "upper", "vertex": 0, "objective": "balanced"},
                {"side": "upper", "vertex": 1},
            ]
        )
    )
    code = main(
        ["query", edges_file, "--batch-file", str(batch)]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    first = payload["results"][0]
    assert first["query"]["objective"] == "balanced"
    assert first["result"]["shape"][0] == first["result"]["shape"][1]


def test_batch_file_balanced_with_index_is_clean_error(
    edges_file, tmp_path, capsys
):
    index_path = str(tmp_path / "index.json")
    assert main(["build", edges_file, "-o", index_path]) == 0
    batch = tmp_path / "batch.json"
    batch.write_text(
        json.dumps([{"side": "upper", "vertex": 0, "objective": "balanced"}])
    )
    capsys.readouterr()
    code = main(
        ["query", edges_file, "--index", index_path,
         "--batch-file", str(batch)]
    )
    assert code == 2
    assert "balanced" in capsys.readouterr().err
