"""Hypothesis property tests: tracing is observation-only.

The ISSUE's acceptance bar: traced and untraced queries return
identical ``(U, L)`` results over random bipartite graphs.  Tracing
must never perturb the search — same incumbent, same tie-breaks, same
answer sets, not merely the same objective value.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import pmbc_online, pmbc_online_star
from repro.graph.bipartite import Side
from repro.graph.builders import from_edges
from repro.obs import SearchTrace, current_trace, use_trace

edge_lists = st.lists(
    st.tuples(st.integers(0, 6), st.integers(0, 6)),
    min_size=1,
    max_size=25,
)


def build(edges):
    return from_edges(sorted(set(edges)))


def _sets(answer):
    if answer is None:
        return None
    return set(answer.upper), set(answer.lower)


@settings(max_examples=40, deadline=None)
@given(edge_lists, st.integers(0, 30), st.integers(1, 4), st.integers(1, 4))
def test_traced_online_returns_identical_sets(edges, pick, tau_u, tau_l):
    graph = build(edges)
    q = pick % graph.num_upper
    untraced = pmbc_online(graph, Side.UPPER, q, tau_u, tau_l)
    trace = SearchTrace()
    with use_trace(trace):
        traced = pmbc_online(graph, Side.UPPER, q, tau_u, tau_l)
    assert _sets(traced) == _sets(untraced)
    if traced is not None:
        assert trace.counters["bb_calls"] >= 1


@settings(max_examples=40, deadline=None)
@given(edge_lists, st.integers(0, 30), st.integers(1, 4), st.integers(1, 4))
def test_traced_online_star_returns_identical_sets(edges, pick, tau_u, tau_l):
    graph = build(edges)
    q = pick % graph.num_lower
    untraced = pmbc_online_star(graph, Side.LOWER, q, tau_u, tau_l)
    with use_trace(SearchTrace()):
        traced = pmbc_online_star(graph, Side.LOWER, q, tau_u, tau_l)
    assert _sets(traced) == _sets(untraced)


@settings(max_examples=25, deadline=None)
@given(edge_lists, st.integers(0, 30))
def test_trace_context_restored_after_query(edges, pick):
    graph = build(edges)
    q = pick % graph.num_upper
    with use_trace(SearchTrace()):
        pmbc_online(graph, Side.UPPER, q)
    assert not current_trace().enabled
