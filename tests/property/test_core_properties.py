"""Hypothesis property tests for (α,β)-cores, bounds, skyline, schedule."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import Biclique, simulate_parallel_schedule
from repro.core.index import BicliqueArray
from repro.core.skyline import SkylineIndex
from repro.corenum.bounds import compute_bounds
from repro.corenum.decomposition import decompose
from repro.corenum.peeling import alpha_beta_core
from repro.graph.bipartite import Side
from repro.graph.builders import from_edges

edge_lists = st.lists(
    st.tuples(st.integers(0, 6), st.integers(0, 6)),
    min_size=1,
    max_size=25,
)


def build(edges):
    return from_edges(sorted(set(edges)))


@settings(max_examples=30, deadline=None)
@given(edge_lists, st.integers(1, 4), st.integers(1, 4))
def test_decomposition_consistent_with_peeling(edges, alpha, beta):
    graph = build(edges)
    decomposition = decompose(graph)
    upper, lower = alpha_beta_core(graph, alpha, beta)
    for side, members in ((Side.UPPER, upper), (Side.LOWER, lower)):
        for v in range(graph.num_vertices_on(side)):
            assert decomposition.in_core(side, v, alpha, beta) == (
                v in members
            )


@settings(max_examples=25, deadline=None)
@given(edge_lists)
def test_z_bound_dominates_every_closed_biclique(edges):
    graph = build(edges)
    bounds = compute_bounds(graph)
    from repro.mbc.oracle import all_closed_bicliques

    for upper, lower in all_closed_bicliques(graph):
        size = len(upper) * len(lower)
        for u in upper:
            assert bounds.z_bound(Side.UPPER, u) >= size
        for v in lower:
            assert bounds.z_bound(Side.LOWER, v) >= size


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(1, 6), st.integers(1, 6)),
        min_size=1,
        max_size=12,
    )
)
def test_skyline_invariant_under_random_inserts(shapes):
    """After arbitrary updates the per-vertex sets are antichains."""
    graph = from_edges([(0, 0)], upper_labels=list(range(8)),
                       lower_labels=list(range(8)))
    array = BicliqueArray()
    skyline = SkylineIndex(graph, array)
    for i, (a, b) in enumerate(shapes):
        biclique = Biclique(
            upper=frozenset(range(a)), lower=frozenset(range(b))
        )
        biclique_id, __ = array.add(biclique)
        skyline.update(biclique, biclique_id)
    for side in Side:
        for v in range(8):
            entries = [array[i] for i in skyline.entries(side, v)]
            for i, first in enumerate(entries):
                for second in entries[i + 1 :]:
                    assert not first.dominates(second)
                    assert not second.dominates(first)
            # Every inserted biclique containing v is dominated by some
            # skyline entry.
            for a, b in shapes:
                contained = v < a if side is Side.UPPER else v < b
                if contained:
                    assert any(
                        len(e.upper) >= a and len(e.lower) >= b
                        for e in entries
                    )


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.floats(0.001, 10.0), min_size=1, max_size=60),
    st.integers(1, 64),
)
def test_schedule_bounds(costs, workers):
    result = simulate_parallel_schedule(costs, workers)
    total = sum(costs)
    # Classic makespan bounds for list scheduling.
    assert result.makespan >= max(costs) - 1e-9
    assert result.makespan >= total / workers - 1e-9
    assert result.makespan <= total + 1e-9
    assert 1.0 - 1e-9 <= result.speedup <= workers + 1e-9
