"""Hypothesis property tests for the graph substrate."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.graph.bipartite import Side
from repro.graph.builders import from_edges
from repro.graph.subgraph import two_hop_subgraph

#: Random small edge lists over bounded label universes.
edge_lists = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 7)),
    min_size=1,
    max_size=30,
)


def build(edges):
    return from_edges([(f"u{u}", f"v{v}") for u, v in edges])


@settings(max_examples=50, deadline=None)
@given(edge_lists)
def test_degree_sums_match_edge_count(edges):
    graph = build(edges)
    upper_sum = sum(graph.degrees(Side.UPPER))
    lower_sum = sum(graph.degrees(Side.LOWER))
    assert upper_sum == lower_sum == graph.num_edges


@settings(max_examples=50, deadline=None)
@given(edge_lists)
def test_adjacency_is_symmetric(edges):
    graph = build(edges)
    for u, v in graph.edges():
        assert u in graph.neighbor_set(Side.LOWER, v)
        assert v in graph.neighbor_set(Side.UPPER, u)
        assert graph.has_edge(u, v)


@settings(max_examples=50, deadline=None)
@given(edge_lists)
def test_edge_set_roundtrips_through_labels(edges):
    graph = build(edges)
    labeled = {
        (graph.label(Side.UPPER, u), graph.label(Side.LOWER, v))
        for u, v in graph.edges()
    }
    expected = {(f"u{u}", f"v{v}") for u, v in edges}
    assert labeled == expected


@settings(max_examples=40, deadline=None)
@given(edge_lists, st.integers(0, 7))
def test_two_hop_subgraph_contains_closed_neighborhood(edges, u_pick):
    graph = build(edges)
    q = u_pick % graph.num_upper
    local = two_hop_subgraph(graph, Side.UPPER, q)
    # Lower layer is exactly N(q).
    assert sorted(local.lower_globals) == list(graph.neighbors(Side.UPPER, q))
    # q is adjacent to every local lower vertex (the Lemma 1 fact).
    assert local.adj_upper[local.q_local] == set(range(local.num_lower))
    # Every local edge is a real edge of the parent graph.
    for lu, neighbors in enumerate(local.adj_upper):
        gu = local.upper_globals[lu]
        for lv in neighbors:
            assert graph.has_edge(gu, local.lower_globals[lv])


@settings(max_examples=40, deadline=None)
@given(edge_lists)
def test_without_isolated_is_idempotent(edges):
    graph = build(edges)
    once = graph.without_isolated_vertices()
    twice = once.without_isolated_vertices()
    assert once == twice
    assert once.degree_one_free()
