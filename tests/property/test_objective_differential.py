"""Differential suite: the balanced objective ≡ the mbb reference.

The pluggable ``"balanced"`` objective runs on the full production
substrate — progressive bounding, effective floors, anchor protection,
either kernel — while :func:`repro.mbb.personalized_balanced_reference`
is a deliberately simple level-by-level walk over ``H_q``.  Both must
report the same optimum ``k`` for every query on the generator zoo,
and the two kernels must agree exactly (identical vertex sets), the
same bar the PMBC kernel differential suite sets.
"""

from __future__ import annotations

import pytest

from repro.core.engine import PMBCQueryEngine
from repro.core.online import pmbc_online, pmbc_online_star
from repro.graph.bipartite import Side
from repro.graph.generators import power_law_bipartite, random_bipartite
from repro.mbb import personalized_balanced_reference


def _graphs():
    yield "random-dense", random_bipartite(24, 18, 0.35, seed=11)
    yield "random-sparse", random_bipartite(40, 32, 0.08, seed=12)
    yield "power-law", power_law_bipartite(50, 40, 220, 1.6, seed=13)


GRAPHS = list(_graphs())


def _queries(graph, per_side=6):
    for side in (Side.UPPER, Side.LOWER):
        n = graph.num_vertices_on(side)
        for q in range(0, n, max(1, n // per_side)):
            yield side, q


def _check_balanced_answer(graph, side, q, tau_u, tau_l, got, expected):
    """``got`` matches the reference optimum and is a valid k×k answer."""
    if expected is None:
        assert got is None
        return
    assert got is not None
    k = len(expected.upper)
    assert got.shape == (k, k)
    assert got.contains(side, q)
    assert got.is_valid_in(graph)
    assert len(got.upper) >= max(tau_u, tau_l)


@pytest.mark.parametrize("name,graph", GRAPHS, ids=[n for n, _ in GRAPHS])
@pytest.mark.parametrize("tau", [(1, 1), (2, 2), (3, 2)])
@pytest.mark.parametrize("kernel", ["set", "bitset", "words"])
def test_balanced_objective_matches_reference(name, graph, tau, kernel):
    tau_u, tau_l = tau
    for side, q in _queries(graph):
        expected = personalized_balanced_reference(
            graph, side, q, tau_u, tau_l
        )
        got = pmbc_online(
            graph, side, q, tau_u, tau_l,
            kernel=kernel, objective="balanced",
        )
        _check_balanced_answer(graph, side, q, tau_u, tau_l, got, expected)


@pytest.mark.parametrize("name,graph", GRAPHS, ids=[n for n, _ in GRAPHS])
def test_balanced_star_path_matches_reference(name, graph):
    """PMBC-OL* gates its edge-count bounds off for the balanced family."""
    for side, q in _queries(graph):
        expected = personalized_balanced_reference(graph, side, q, 2, 2)
        got = pmbc_online_star(
            graph, side, q, 2, 2, objective="balanced"
        )
        _check_balanced_answer(graph, side, q, 2, 2, got, expected)


@pytest.mark.parametrize("name,graph", GRAPHS, ids=[n for n, _ in GRAPHS])
def test_balanced_kernels_agree_exactly(name, graph):
    """All kernels return identical balanced vertex sets."""
    for side, q in _queries(graph):
        for tau in (1, 2):
            got = {
                kernel: pmbc_online(
                    graph, side, q, tau, tau,
                    kernel=kernel, objective="balanced",
                )
                for kernel in ("set", "bitset", "words")
            }
            assert got["set"] == got["bitset"] == got["words"], (
                name, side, q, tau,
            )


@pytest.mark.parametrize("name,graph", GRAPHS, ids=[n for n, _ in GRAPHS])
def test_engine_answers_balanced_and_pmbc_share_cache(name, graph):
    """One engine serves both families; answers match the references."""
    engine = PMBCQueryEngine(graph)
    for side, q in _queries(graph, per_side=4):
        balanced = engine.query(side, q, 2, 2, objective="balanced")
        expected = personalized_balanced_reference(graph, side, q, 2, 2)
        _check_balanced_answer(graph, side, q, 2, 2, balanced, expected)
        pmbc = engine.query(side, q, 2, 2)
        reference = pmbc_online(graph, side, q, 2, 2)
        assert (pmbc is None) == (reference is None)
        if pmbc is not None:
            assert pmbc.num_edges == reference.num_edges
