"""Differential suite: streaming updates vs from-scratch rebuild.

The streaming stack's acceptance property: after >= 1000 mixed edge
updates the incrementally maintained state must be indistinguishable
from a rebuild — identical (α,β)-core bounds, a byte-identical packed
adjacency, and identical personalized answers on every kernel, with
queries interleaved throughout the stream.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import temporal_replay
from repro.core.online import pmbc_online
from repro.corenum.bounds import compute_bounds
from repro.corenum.incremental import IncrementalCoreBounds
from repro.graph.bipartite import BipartiteGraph, Side
from repro.graph.generators import power_law_bipartite
from repro.kernel import KERNEL_KINDS
from repro.kernel.dynadj import DynamicPackedAdjacency

NUM_UPDATES = 1000


def _rebuild(upper_adj, num_lower):
    return BipartiteGraph(
        [sorted(ns) for ns in upper_adj], num_lower=num_lower
    )


@pytest.fixture(scope="module")
def churned():
    """Replay >= 1000 mixed updates through every incremental surface.

    Returns ``(inc, dynadj, final_graph, interleaved)`` where
    ``interleaved`` pairs each mid-stream query with the incremental
    and rebuilt answers observed at that point in the stream.
    """
    graph = power_law_bipartite(60, 45, 260, 1.6, seed=29)
    events = temporal_replay(
        graph,
        num_updates=NUM_UPDATES,
        delete_fraction=0.45,
        rewire_fraction=0.6,
        query_every=100,
        seed=5,
    )
    inc = IncrementalCoreBounds(graph)
    dynadj = DynamicPackedAdjacency(graph)
    upper_adj = [
        set(graph.neighbors(Side.UPPER, u)) for u in range(graph.num_upper)
    ]
    num_lower = graph.num_lower
    interleaved = []
    applied = 0
    for __, action, a, b in events:
        if action == "query":
            snap = dynadj.snapshot()
            fresh = _rebuild(upper_adj, num_lower)
            q_inc = pmbc_online(snap, a, b, 2, 2, bounds=inc.bounds)
            q_reb = pmbc_online(fresh, a, b, 2, 2)
            interleaved.append((applied, q_inc, q_reb))
        else:
            u, v = a, b
            if action == "insert":
                inc.insert_edge(u, v)
                dynadj.insert_edge(u, v)
                while u >= len(upper_adj):
                    upper_adj.append(set())
                num_lower = max(num_lower, v + 1)
                upper_adj[u].add(v)
            else:
                inc.delete_edge(u, v)
                dynadj.delete_edge(u, v)
                upper_adj[u].discard(v)
            applied += 1
    assert applied >= NUM_UPDATES
    return inc, dynadj, _rebuild(upper_adj, num_lower), interleaved


def _answer_key(result):
    if result is None:
        return None
    return (frozenset(result.upper), frozenset(result.lower))


def test_bounds_equal_recomputed(churned):
    inc, __, final, __interleaved = churned
    inc.verify()
    exact = compute_bounds(final)
    for side in Side:
        assert inc.bounds.z[side] == exact.z[side], side
        assert inc.bounds.prefix[side] == exact.prefix[side], side
        assert inc.bounds.suffix[side] == exact.suffix[side], side


def test_packed_adjacency_byte_identical(churned):
    __, dynadj, final, __interleaved = churned
    assert (
        dynadj.canonical_bytes()
        == DynamicPackedAdjacency(final).canonical_bytes()
    )


def test_snapshot_equals_rebuilt_graph(churned):
    __, dynadj, final, __interleaved = churned
    snap = dynadj.snapshot()
    for side in Side:
        assert snap.num_vertices_on(side) == final.num_vertices_on(side)
        for v in range(final.num_vertices_on(side)):
            assert snap.neighbors(side, v) == final.neighbors(side, v)


def test_interleaved_answers_match_rebuild(churned):
    __, __dyn, __final, interleaved = churned
    assert interleaved, "stream produced no interleaved queries"
    for at, q_inc, q_reb in interleaved:
        got = None if q_inc is None else q_inc.num_edges
        want = None if q_reb is None else q_reb.num_edges
        assert got == want, f"answer diverged after {at} updates"


@pytest.mark.parametrize("kernel", KERNEL_KINDS)
def test_final_answers_identical_on_every_kernel(churned, kernel):
    inc, dynadj, final, __interleaved = churned
    snap = dynadj.snapshot()
    for side in (Side.UPPER, Side.LOWER):
        n = final.num_vertices_on(side)
        for q in range(0, n, max(1, n // 8)):
            for tau_u, tau_l in ((1, 1), (2, 2)):
                maintained = pmbc_online(
                    snap, side, q, tau_u, tau_l,
                    bounds=inc.bounds, kernel=kernel,
                )
                rebuilt = pmbc_online(final, side, q, tau_u, tau_l)
                assert _answer_key(maintained) == _answer_key(rebuilt), (
                    kernel, side, q, tau_u, tau_l,
                )
