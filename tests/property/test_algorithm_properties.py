"""Hypothesis property tests: algorithms vs oracles and paper lemmas."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import (
    Biclique,
    build_index_star,
    pmbc_index_query,
    pmbc_online,
    pmbc_online_star,
)
from repro.graph.bipartite import Side
from repro.graph.builders import from_edges
from repro.mbc.oracle import personalized_max_brute

edge_lists = st.lists(
    st.tuples(st.integers(0, 6), st.integers(0, 6)),
    min_size=1,
    max_size=25,
)


def build(edges):
    return from_edges(sorted(set(edges)))


def _oracle_size(graph, side, q, tau_u, tau_l):
    expected = personalized_max_brute(graph, side, q, tau_u, tau_l)
    return len(expected[0]) * len(expected[1]) if expected else 0


@settings(max_examples=40, deadline=None)
@given(edge_lists, st.integers(0, 30), st.integers(1, 4), st.integers(1, 4))
def test_online_matches_oracle(edges, pick, tau_u, tau_l):
    graph = build(edges)
    q = pick % graph.num_upper
    got = pmbc_online(graph, Side.UPPER, q, tau_u, tau_l)
    got_size = got.num_edges if got else 0
    assert got_size == _oracle_size(graph, Side.UPPER, q, tau_u, tau_l)
    if got:
        assert got.is_valid_in(graph)
        assert got.contains(Side.UPPER, q)
        assert got.satisfies(tau_u, tau_l)


@settings(max_examples=25, deadline=None)
@given(edge_lists, st.integers(0, 30), st.integers(1, 3), st.integers(1, 3))
def test_online_star_matches_oracle(edges, pick, tau_u, tau_l):
    graph = build(edges)
    q = pick % graph.num_lower
    got = pmbc_online_star(graph, Side.LOWER, q, tau_u, tau_l)
    got_size = got.num_edges if got else 0
    assert got_size == _oracle_size(graph, Side.LOWER, q, tau_u, tau_l)


@settings(max_examples=20, deadline=None)
@given(edge_lists)
def test_index_answers_match_oracle_everywhere(edges):
    graph = build(edges)
    index = build_index_star(graph)
    for side in Side:
        for q in range(graph.num_vertices_on(side)):
            for tau_u in (1, 2, 3):
                for tau_l in (1, 2, 3):
                    got = pmbc_index_query(index, side, q, tau_u, tau_l)
                    got_size = got.num_edges if got else 0
                    assert got_size == _oracle_size(
                        graph, side, q, tau_u, tau_l
                    ), (side, q, tau_u, tau_l)


@settings(max_examples=30, deadline=None)
@given(edge_lists, st.integers(0, 30))
def test_lemma2_monotonicity(edges, pick):
    """Answer size is non-increasing in each constraint (Lemma 2)."""
    graph = build(edges)
    q = pick % graph.num_upper
    sizes = []
    for tau in range(1, 5):
        result = pmbc_online(graph, Side.UPPER, q, tau, 1)
        sizes.append(result.num_edges if result else 0)
    assert all(a >= b for a, b in zip(sizes, sizes[1:]))
    sizes = []
    for tau in range(1, 5):
        result = pmbc_online(graph, Side.UPPER, q, 1, tau)
        sizes.append(result.num_edges if result else 0)
    assert all(a >= b for a, b in zip(sizes, sizes[1:]))


@settings(max_examples=30, deadline=None)
@given(edge_lists, st.integers(0, 30))
def test_lemma5_tree_size_bound(edges, pick):
    """|T_q| = O(deg(q)): the explicit 4*deg+1 bound."""
    graph = build(edges)
    index = build_index_star(graph)
    for side in Side:
        for v in range(graph.num_vertices_on(side)):
            assert len(index.tree(side, v)) <= 4 * graph.degree(side, v) + 1


@settings(max_examples=30, deadline=None)
@given(edge_lists)
def test_lemma10_array_bound(edges):
    """|A| is at most the sum of vertex degrees (Lemma 10)."""
    graph = build(edges)
    index = build_index_star(graph)
    degree_sum = sum(
        graph.degree(side, v)
        for side in Side
        for v in range(graph.num_vertices_on(side))
    )
    assert index.num_bicliques <= degree_sum


@settings(max_examples=50, deadline=None)
@given(
    st.sets(st.integers(0, 9), min_size=1),
    st.sets(st.integers(0, 9), min_size=1),
    st.sets(st.integers(0, 9), min_size=1),
    st.sets(st.integers(0, 9), min_size=1),
)
def test_biclique_domination_is_a_partial_order(u1, l1, u2, l2):
    a = Biclique(upper=frozenset(u1), lower=frozenset(l1))
    b = Biclique(upper=frozenset(u2), lower=frozenset(l2))
    assert a.dominates(a)
    if a.dominates(b) and b.dominates(a):
        assert a.shape == b.shape
    if a.dominates(b):
        assert a.num_edges >= b.num_edges or (
            # domination is on shape, not edge count of arbitrary sets;
            # with both coordinates >= the product is >= too.
            False
        )
