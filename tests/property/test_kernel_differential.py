"""Differential suite: the set, bitset and words kernels are interchangeable.

The packed kernels (``repro.kernel``) must be pure performance
substitutions: on any graph, every kernel returns the same ``(U, L)``
answer for every query surface (PMBC-OL, PMBC-OL*, the query engine,
the batch paths) and builds byte-identical serialized indexes.  Seeded
generator graphs give deterministic cross-kernel coverage over dense,
sparse and skewed degree shapes.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.construction_star import build_index_star
from repro.core.engine import PMBCQueryEngine
from repro.core.online import pmbc_online, pmbc_online_batch, pmbc_online_star
from repro.core.query import QueryRequest
from repro.core.serialize import write_binary
from repro.corenum.bounds import compute_bounds
from repro.graph.bipartite import Side
from repro.graph.generators import power_law_bipartite, random_bipartite
from repro.kernel import KERNEL_KINDS

KERNELS = KERNEL_KINDS


def _graphs():
    yield "random-dense", random_bipartite(24, 18, 0.35, seed=11)
    yield "random-sparse", random_bipartite(40, 32, 0.08, seed=12)
    yield "power-law", power_law_bipartite(50, 40, 220, 1.6, seed=13)


GRAPHS = list(_graphs())


def _queries(graph, per_side=6):
    for side in (Side.UPPER, Side.LOWER):
        n = graph.num_vertices_on(side)
        for q in range(0, n, max(1, n // per_side)):
            yield side, q


def _key(result):
    if result is None:
        return None
    return (frozenset(result.upper), frozenset(result.lower))


def _assert_all_equal(got: dict, context) -> None:
    reference = got[KERNELS[0]]
    for kernel in KERNELS[1:]:
        assert got[kernel] == reference, (kernel, context)


@pytest.mark.parametrize("name,graph", GRAPHS, ids=[n for n, _ in GRAPHS])
@pytest.mark.parametrize("tau", [(1, 1), (2, 2), (3, 2)])
def test_online_kernels_agree(name, graph, tau):
    tau_u, tau_l = tau
    for side, q in _queries(graph):
        got = {
            kernel: _key(
                pmbc_online(graph, side, q, tau_u, tau_l, kernel=kernel)
            )
            for kernel in KERNELS
        }
        _assert_all_equal(got, (name, side, q, tau))


@pytest.mark.parametrize("name,graph", GRAPHS, ids=[n for n, _ in GRAPHS])
def test_online_star_kernels_agree(name, graph):
    bounds = compute_bounds(graph)
    for side, q in _queries(graph):
        got = {
            kernel: _key(
                pmbc_online_star(
                    graph, side, q, 2, 2, bounds=bounds, kernel=kernel
                )
            )
            for kernel in KERNELS
        }
        _assert_all_equal(got, (name, side, q))


@pytest.mark.parametrize("name,graph", GRAPHS, ids=[n for n, _ in GRAPHS])
def test_engine_kernels_agree(name, graph):
    engines = {
        kernel: PMBCQueryEngine(graph, kernel=kernel) for kernel in KERNELS
    }
    for side, q in _queries(graph):
        for tau_u, tau_l in ((1, 1), (2, 3)):
            got = {
                kernel: _key(engine.query(side, q, tau_u, tau_l))
                for kernel, engine in engines.items()
            }
            _assert_all_equal(got, (name, side, q, tau_u, tau_l))


def _batch_requests(graph):
    """A mixed batch: repeated vertices, duplicate requests, both sides."""
    requests = []
    for (side, q), (tau_u, tau_l) in itertools.product(
        itertools.islice(_queries(graph, per_side=3), 6),
        ((1, 1), (2, 2)),
    ):
        requests.append(QueryRequest(side, q, tau_u, tau_l))
    # Exact duplicates — the batch path answers them from one search.
    requests.extend(requests[:3])
    return requests


@pytest.mark.parametrize("name,graph", GRAPHS, ids=[n for n, _ in GRAPHS])
def test_batch_kernels_agree_and_match_single(name, graph):
    """query_batch is kernel-independent AND equals per-request answers."""
    requests = _batch_requests(graph)
    bounds = compute_bounds(graph)
    got = {
        kernel: [
            _key(b)
            for b in pmbc_online_batch(
                graph, requests, bounds=bounds, kernel=kernel
            )
        ]
        for kernel in KERNELS
    }
    _assert_all_equal(got, name)
    single = [
        _key(pmbc_online(graph, r, bounds=bounds, kernel="bitset"))
        for r in requests
    ]
    assert got["bitset"] == single, name


@pytest.mark.parametrize("name,graph", GRAPHS, ids=[n for n, _ in GRAPHS])
def test_engine_batch_kernels_agree_and_match_single(name, graph):
    requests = _batch_requests(graph)
    answers = {}
    for kernel in KERNELS:
        engine = PMBCQueryEngine(graph, kernel=kernel)
        answers[kernel] = [_key(b) for b in engine.query_batch(requests)]
        single = [_key(engine.query(r)) for r in requests]
        assert answers[kernel] == single, (name, kernel)
    _assert_all_equal(answers, name)


@pytest.mark.parametrize("name,graph", GRAPHS, ids=[n for n, _ in GRAPHS])
def test_indexes_serialize_byte_identical(name, graph, tmp_path):
    """Mask-space builds serialize byte-identically to frozenset builds."""
    bounds = compute_bounds(graph)
    payloads = {}
    for kernel in KERNELS:
        index = build_index_star(graph, bounds=bounds, kernel=kernel)
        path = tmp_path / f"{kernel}.idx"
        write_binary(index, path)
        payloads[kernel] = path.read_bytes()
    _assert_all_equal(payloads, name)
