"""Differential suite: the set and bitset kernels are interchangeable.

The bitset kernel (``repro.kernel``) must be a pure performance
substitution: on any graph, both kernels return the same ``(U, L)``
answer for every query surface (PMBC-OL, PMBC-OL*, the query engine)
and build byte-identical serialized indexes.  Seeded generator graphs
give deterministic cross-kernel coverage over dense, sparse and skewed
degree shapes.
"""

from __future__ import annotations

import pytest

from repro.core.construction_star import build_index_star
from repro.core.engine import PMBCQueryEngine
from repro.core.online import pmbc_online, pmbc_online_star
from repro.core.serialize import write_binary
from repro.corenum.bounds import compute_bounds
from repro.graph.bipartite import Side
from repro.graph.generators import power_law_bipartite, random_bipartite


def _graphs():
    yield "random-dense", random_bipartite(24, 18, 0.35, seed=11)
    yield "random-sparse", random_bipartite(40, 32, 0.08, seed=12)
    yield "power-law", power_law_bipartite(50, 40, 220, 1.6, seed=13)


GRAPHS = list(_graphs())


def _queries(graph, per_side=6):
    for side in (Side.UPPER, Side.LOWER):
        n = graph.num_vertices_on(side)
        for q in range(0, n, max(1, n // per_side)):
            yield side, q


def _key(result):
    if result is None:
        return None
    return (frozenset(result.upper), frozenset(result.lower))


@pytest.mark.parametrize("name,graph", GRAPHS, ids=[n for n, _ in GRAPHS])
@pytest.mark.parametrize("tau", [(1, 1), (2, 2), (3, 2)])
def test_online_kernels_agree(name, graph, tau):
    tau_u, tau_l = tau
    for side, q in _queries(graph):
        got = {
            kernel: _key(
                pmbc_online(graph, side, q, tau_u, tau_l, kernel=kernel)
            )
            for kernel in ("set", "bitset")
        }
        assert got["set"] == got["bitset"], (name, side, q, tau)


@pytest.mark.parametrize("name,graph", GRAPHS, ids=[n for n, _ in GRAPHS])
def test_online_star_kernels_agree(name, graph):
    bounds = compute_bounds(graph)
    for side, q in _queries(graph):
        got = {
            kernel: _key(
                pmbc_online_star(
                    graph, side, q, 2, 2, bounds=bounds, kernel=kernel
                )
            )
            for kernel in ("set", "bitset")
        }
        assert got["set"] == got["bitset"], (name, side, q)


@pytest.mark.parametrize("name,graph", GRAPHS, ids=[n for n, _ in GRAPHS])
def test_engine_kernels_agree(name, graph):
    engines = {
        kernel: PMBCQueryEngine(graph, kernel=kernel)
        for kernel in ("set", "bitset")
    }
    for side, q in _queries(graph):
        for tau_u, tau_l in ((1, 1), (2, 3)):
            got = {
                kernel: _key(engine.query(side, q, tau_u, tau_l))
                for kernel, engine in engines.items()
            }
            assert got["set"] == got["bitset"], (name, side, q, tau_u, tau_l)


@pytest.mark.parametrize("name,graph", GRAPHS, ids=[n for n, _ in GRAPHS])
def test_indexes_serialize_byte_identical(name, graph, tmp_path):
    bounds = compute_bounds(graph)
    payloads = {}
    for kernel in ("set", "bitset"):
        index = build_index_star(graph, bounds=bounds, kernel=kernel)
        path = tmp_path / f"{kernel}.idx"
        write_binary(index, path)
        payloads[kernel] = path.read_bytes()
    assert payloads["set"] == payloads["bitset"], name
