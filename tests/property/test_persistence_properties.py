"""Hypothesis property tests for persistence and dynamic maintenance."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import build_index_star, pmbc_index_query
from repro.core.dynamic import DynamicPMBCIndex
from repro.core.index import PMBCIndex
from repro.core.serialize import read_binary, write_binary
from repro.graph.bipartite import Side
from repro.graph.builders import from_edges

edge_lists = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5)),
    min_size=1,
    max_size=18,
)


def build(edges):
    return from_edges(sorted(set(edges)))


def _all_answers(index, graph):
    answers = {}
    for side in Side:
        for q in range(graph.num_vertices_on(side)):
            for tau_u in (1, 2, 3):
                for tau_l in (1, 2, 3):
                    result = pmbc_index_query(index, side, q, tau_u, tau_l)
                    answers[(side, q, tau_u, tau_l)] = (
                        result.num_edges if result else 0
                    )
    return answers


@settings(max_examples=20, deadline=None)
@given(edge_lists)
def test_json_roundtrip_preserves_all_answers(edges):
    import tempfile
    from pathlib import Path

    graph = build(edges)
    index = build_index_star(graph)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "index.json"
        index.save(path)
        loaded = PMBCIndex.load(path)
    assert _all_answers(index, graph) == _all_answers(loaded, graph)


@settings(max_examples=20, deadline=None)
@given(edge_lists)
def test_binary_roundtrip_preserves_all_answers(edges):
    import tempfile
    from pathlib import Path

    graph = build(edges)
    index = build_index_star(graph)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "index.bin"
        write_binary(index, path)
        loaded = read_binary(path)
    assert _all_answers(index, graph) == _all_answers(loaded, graph)


@settings(max_examples=15, deadline=None)
@given(
    edge_lists,
    st.lists(
        st.tuples(
            st.booleans(), st.integers(0, 5), st.integers(0, 5)
        ),
        max_size=6,
    ),
)
def test_dynamic_equals_fresh_rebuild_after_any_ops(edges, ops):
    """After any applicable op sequence, the dynamic index answers
    exactly like an index built from scratch on the final graph."""
    graph = build(edges)
    dynamic = DynamicPMBCIndex(graph)
    for insert, u, v in ops:
        if insert:
            if not dynamic.has_edge(u, v):
                dynamic.insert_edge(u, v)
        else:
            if dynamic.has_edge(u, v):
                dynamic.delete_edge(u, v)
    final = dynamic.graph()
    fresh = build_index_star(final)
    assert _all_answers(dynamic.index, final) == _all_answers(fresh, final)
