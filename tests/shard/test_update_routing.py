"""Streaming updates across a sharded deployment.

Routing (owner shard per upper endpoint, cross-shard accounting,
growth ids falling back to shard 0), the one-true-state invariant
(every shard shares a single maintainer / packed adjacency / lock),
and answer correctness after churn on every shard.
"""

from __future__ import annotations

import pytest

from repro.core.online import pmbc_online
from repro.corenum.bounds import compute_bounds
from repro.graph.bipartite import Side
from repro.graph.generators import power_law_bipartite
from repro.shard import ShardedService

SHARDS = 2


@pytest.fixture
def sharded():
    graph = power_law_bipartite(30, 24, 120, 1.5, seed=7)
    service = ShardedService(graph, SHARDS).start()
    try:
        yield service
    finally:
        service.close()


def _edge_owned_by(service, shard_id, present):
    graph = service.graph
    for u in range(graph.num_upper):
        if service.shard_map.shard_of(Side.UPPER, u) != shard_id:
            continue
        for v in range(graph.num_lower):
            if graph.has_edge(u, v) == present:
                return u, v
    raise AssertionError(f"no suitable edge for shard {shard_id}")


def test_updates_route_to_owner_and_propagate(sharded):
    ops = []
    for shard_id in range(SHARDS):
        ops.append(("insert", *_edge_owned_by(sharded, shard_id, False)))
    result = sharded.update_batch(ops)
    assert result.applied == len(ops)
    # Multi-shard batch: no single applying shard.
    assert result.shard is None
    stats = sharded.stats()["sharding"]["updates"]
    assert stats["batches"] == 1
    assert sum(stats["applied"].values()) == len(ops)
    # Every shard answers from the new snapshot.
    graph = sharded.graph
    for action, u, v in ops:
        assert graph.has_edge(u, v)
        expected = pmbc_online(graph, Side.UPPER, u, 1, 1)
        got = sharded.query(Side.UPPER, u, 1, 1).biclique
        assert (got.num_edges if got else None) == (
            expected.num_edges if expected else None
        )


def test_single_shard_batch_reports_shard(sharded):
    u, v = _edge_owned_by(sharded, 1, False)
    result = sharded.update_batch([("insert", u, v)])
    assert result.applied == 1
    assert result.shard == 1


def test_cross_shard_edges_counted(sharded):
    graph = sharded.graph
    cross = next(
        (u, v)
        for u in range(graph.num_upper)
        for v in range(graph.num_lower)
        if not graph.has_edge(u, v)
        and sharded.shard_map.shard_of(Side.UPPER, u)
        != sharded.shard_map.shard_of(Side.LOWER, v)
    )
    sharded.update_batch([("insert", *cross)])
    stats = sharded.stats()["sharding"]["updates"]
    assert stats["cross_shard_edges"] == 1
    assert sharded.graph.has_edge(*cross)


def test_update_state_is_shared_across_shards(sharded):
    u, v = _edge_owned_by(sharded, 0, False)
    sharded.update_batch([("insert", u, v)])
    services = [w.service for w in sharded._workers]
    assert len({id(s._updater) for s in services}) == 1
    assert len({id(s._dynadj) for s in services}) == 1
    assert len({id(s._update_lock) for s in services}) == 1
    # The shared maintainer observed the update: its bounds equal a
    # recompute of the merged snapshot.
    exact = compute_bounds(sharded.graph)
    live = services[0]._updater.bounds
    for side in Side:
        assert live.z[side] == exact.z[side]


def test_growth_ids_fall_back_to_shard_zero(sharded):
    graph = sharded.graph
    u = graph.num_upper + 2
    result = sharded.update_batch([("insert", u, 0)])
    assert result.applied == 1
    assert result.shard == 0
    assert sharded.graph.has_edge(u, 0)


def test_churn_keeps_all_shards_consistent(sharded):
    import random

    rng = random.Random(3)
    graph = sharded.graph
    for __ in range(12):
        ops = []
        for __ in range(4):
            u = rng.randrange(graph.num_upper)
            v = rng.randrange(graph.num_lower)
            ops.append((rng.choice(("insert", "delete")), u, v))
        sharded.update_batch(ops)
    final = sharded.graph
    exact = compute_bounds(final)
    for worker in sharded._workers:
        assert worker.service.graph is final
    for side in (Side.UPPER, Side.LOWER):
        n = final.num_vertices_on(side)
        for q in range(0, n, max(1, n // 6)):
            expected = pmbc_online(final, side, q, 2, 2, bounds=exact)
            got = sharded.query(side, q, 2, 2).biclique
            assert (got.num_edges if got else None) == (
                expected.num_edges if expected else None
            )
