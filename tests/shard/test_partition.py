"""Unit tests for the contiguous-range :class:`ShardMap`."""

from __future__ import annotations

import pytest

from repro.graph.bipartite import Side
from repro.shard import ShardMap


@pytest.mark.parametrize("num_shards", [1, 2, 3, 5, 7])
def test_every_vertex_owned_exactly_once(medium_planted_graph, num_shards):
    shard_map = ShardMap.for_graph(medium_planted_graph, num_shards)
    seen: dict[tuple[Side, int], int] = {}
    for shard in range(num_shards):
        for pair in shard_map.owned(shard):
            assert pair not in seen, f"{pair} owned by two shards"
            seen[pair] = shard
    assert len(seen) == shard_map.total_vertices
    # shard_of agrees with the owned() enumeration for every vertex.
    for (side, vertex), shard in seen.items():
        assert shard_map.shard_of(side, vertex) == shard


def test_spans_are_contiguous_and_near_equal(medium_planted_graph):
    shard_map = ShardMap.for_graph(medium_planted_graph, 3)
    spans = shard_map.spans()
    assert spans[0][0] == 0
    for (__, stop), (start, __stop) in zip(spans, spans[1:]):
        assert stop == start  # no gaps, no overlap
    assert spans[-1][1] == shard_map.total_vertices
    sizes = [stop - start for start, stop in spans]
    assert max(sizes) - min(sizes) <= 1


def test_boundary_vertices_route_to_adjacent_shards(medium_planted_graph):
    """The vertices on either side of a span cut land on different shards."""
    shard_map = ShardMap.for_graph(medium_planted_graph, 4)
    num_upper = shard_map.num_upper

    def pair_of(gid: int) -> tuple[Side, int]:
        if gid < num_upper:
            return Side.UPPER, gid
        return Side.LOWER, gid - num_upper

    for shard, (start, stop) in enumerate(shard_map.spans()):
        if start == stop:
            continue
        assert shard_map.shard_of(*pair_of(start)) == shard
        assert shard_map.shard_of(*pair_of(stop - 1)) == shard
        if stop < shard_map.total_vertices:
            assert shard_map.shard_of(*pair_of(stop)) == shard + 1


def test_boundary_spans_relabeled_axis_between_sides(medium_planted_graph):
    """The upper/lower seam is just another point on the combined axis.

    With two shards the cut falls at ``total // 2 (+1)`` — inside the
    upper layer for this graph — so shard 1 owns the tail of the upper
    layer *and* the whole lower layer.  Ownership follows post-relabel
    dense ids, not the side split.
    """
    shard_map = ShardMap.for_graph(medium_planted_graph, 2)
    cut = shard_map.span(0)[1]
    assert cut < shard_map.num_upper, "graph too small for this scenario"
    assert shard_map.shard_of(Side.UPPER, cut - 1) == 0
    assert shard_map.shard_of(Side.UPPER, cut) == 1
    assert shard_map.shard_of(Side.LOWER, 0) == 1
    assert shard_map.shard_of(Side.LOWER, shard_map.num_lower - 1) == 1


def test_more_shards_than_vertices_leaves_empty_shards():
    shard_map = ShardMap(num_shards=7, num_upper=2, num_lower=2)
    spans = shard_map.spans()
    assert [stop - start for start, stop in spans] == [1, 1, 1, 1, 0, 0, 0]
    for shard in (4, 5, 6):
        assert shard_map.owned(shard) == []
    # Every vertex still routes to a non-empty shard.
    for side in Side:
        for vertex in range(2):
            owner = shard_map.shard_of(side, vertex)
            assert shard_map.owned(owner), "routed to an empty shard"


def test_single_shard_owns_everything(paper_graph):
    shard_map = ShardMap.for_graph(paper_graph, 1)
    assert shard_map.spans() == [(0, shard_map.total_vertices)]
    for side in Side:
        count = (
            shard_map.num_upper if side is Side.UPPER else shard_map.num_lower
        )
        for vertex in range(count):
            assert shard_map.shard_of(side, vertex) == 0


def test_invalid_arguments_raise():
    with pytest.raises(ValueError):
        ShardMap(num_shards=0, num_upper=4, num_lower=4)
    with pytest.raises(ValueError):
        ShardMap(num_shards=2, num_upper=-1, num_lower=4)
    shard_map = ShardMap(num_shards=2, num_upper=3, num_lower=3)
    with pytest.raises(ValueError):
        shard_map.shard_of(Side.UPPER, 3)
    with pytest.raises(ValueError):
        shard_map.shard_of(Side.LOWER, -1)
    with pytest.raises(ValueError):
        shard_map.span(2)


def test_to_json_round_trips_the_layout(paper_graph):
    shard_map = ShardMap.for_graph(paper_graph, 3)
    blob = shard_map.to_json()
    assert blob["num_shards"] == 3
    assert blob["num_upper"] == paper_graph.num_upper
    assert blob["num_lower"] == paper_graph.num_lower
    assert blob["spans"] == [list(span) for span in shard_map.spans()]
