"""Routing, scatter/gather, and degradation tests for the shard router."""

from __future__ import annotations

import threading

import pytest

from repro.core.query import QueryRequest
from repro.graph.bipartite import Side
from repro.serve import (
    PMBCService,
    QueueFullError,
    ServiceClosedError,
    ServiceConfig,
)
from repro.shard import ShardedService

CONFIG = ServiceConfig(num_workers=2, max_queue=64)


@pytest.fixture()
def sharded(medium_planted_graph):
    service = ShardedService(medium_planted_graph, 3, config=CONFIG)
    service.start()
    try:
        yield medium_planted_graph, service
    finally:
        service.close()


def mixed_batch(graph, shard_map) -> list[QueryRequest]:
    """Duplicates, both sides, and every shard's boundary vertices."""
    requests = [
        QueryRequest(Side.UPPER, 0, 2, 2),
        QueryRequest(Side.UPPER, 0, 2, 2),  # exact duplicate
        QueryRequest(Side.LOWER, 3, 1, 2),
        QueryRequest(Side.UPPER, graph.num_upper - 1, 1, 1),
        QueryRequest(Side.LOWER, graph.num_lower - 1, 1, 1),
    ]
    num_upper = shard_map.num_upper
    for start, stop in shard_map.spans():
        for gid in {start, max(start, stop - 1)}:
            if gid >= shard_map.total_vertices:
                continue
            if gid < num_upper:
                requests.append(QueryRequest(Side.UPPER, gid, 1, 1))
            else:
                requests.append(
                    QueryRequest(Side.LOWER, gid - num_upper, 1, 1)
                )
    return requests


def test_query_routes_to_owning_shard(sharded):
    graph, service = sharded
    for side, vertex in [
        (Side.UPPER, 0),
        (Side.UPPER, graph.num_upper - 1),
        (Side.LOWER, 0),
        (Side.LOWER, graph.num_lower - 1),
    ]:
        result = service.query(side, vertex, 2, 2)
        assert result.shard == service.shard_map.shard_of(side, vertex)
        assert result.degraded is False


def test_batch_matches_single_process_service(sharded):
    """Differential: scatter/gather answers == one unsharded service."""
    graph, service = sharded
    requests = mixed_batch(graph, service.shard_map)
    merged = service.query_batch(requests)
    with PMBCService(graph, config=CONFIG) as reference:
        expected = reference.query_batch(requests)
    assert len(merged.bicliques) == len(requests)
    for got, want in zip(merged.bicliques, expected.bicliques):
        got_edges = None if got is None else (got.upper, got.lower)
        want_edges = None if want is None else (want.upper, want.lower)
        assert got_edges == want_edges
    assert merged.degraded is False
    # The batch crossed shards, so no single shard label applies.
    assert merged.shard is None


def test_batch_on_one_shard_keeps_its_label(sharded):
    graph, service = sharded
    requests = [
        QueryRequest(Side.UPPER, 0, 1, 1),
        QueryRequest(Side.UPPER, 1, 1, 1),
    ]
    owner = service.shard_map.shard_of(Side.UPPER, 0)
    assert owner == service.shard_map.shard_of(Side.UPPER, 1)
    merged = service.query_batch(requests)
    assert merged.shard == owner


def test_explain_batch_stitches_shard_traces(sharded):
    graph, service = sharded
    requests = mixed_batch(graph, service.shard_map)
    merged = service.query_batch(requests, explain=True)
    trace = merged.trace
    assert trace is not None
    assert trace["meta"]["kind"] == "sharded_batch"
    stitched_from = trace["meta"]["stitched_from"]
    assert len(stitched_from) == len(trace["meta"]["shards"]) >= 2


def test_one_shard_down_degrades_instead_of_failing(sharded):
    graph, service = sharded
    down = service.shard_map.shard_of(Side.UPPER, 0)
    service.shards[down].service.close()

    result = service.query(Side.UPPER, 0, 2, 2)
    assert result.degraded is True
    assert result.shard != down
    # An unaffected vertex still routes normally.
    other_side, other_vertex = next(
        pair
        for shard in range(3)
        if shard != down
        for pair in service.shard_map.owned(shard)
    )
    clean = service.query(other_side, other_vertex, 1, 1)
    assert clean.degraded is False

    merged = service.query_batch(mixed_batch(graph, service.shard_map))
    assert merged.degraded is True

    stats = service.stats()
    assert stats["sharding"]["healthy"].count(True) == 2
    assert stats["sharding"]["degraded"] > 0
    assert service.healthy()


def test_all_shards_down_raises_closed(sharded):
    __, service = sharded
    for worker in service.shards:
        worker.service.close()
    assert not service.healthy()
    with pytest.raises(ServiceClosedError):
        service.query(Side.UPPER, 0, 1, 1)
    with pytest.raises(ServiceClosedError):
        service.query_batch([QueryRequest(Side.UPPER, 0, 1, 1)])


def test_more_shards_than_vertices_still_answers(paper_graph):
    total = paper_graph.num_upper + paper_graph.num_lower
    with ShardedService(
        paper_graph, total + 3, config=ServiceConfig(num_workers=1)
    ) as service:
        spans = service.shard_map.spans()
        assert any(start == stop for start, stop in spans)
        result = service.query(Side.UPPER, 0, 1, 1)
        assert result.biclique is not None
        assert result.shard == service.shard_map.shard_of(Side.UPPER, 0)


def test_queue_full_raises_queue_full(medium_planted_graph):
    tiny = ServiceConfig(num_workers=1, max_queue=1)
    with ShardedService(medium_planted_graph, 2, config=tiny) as service:
        with pytest.raises(QueueFullError):
            for __ in range(64):
                service.submit(Side.UPPER, 0, 6, 6)


def test_metrics_and_stats_expose_shard_series(sharded):
    graph, service = sharded
    service.query(Side.UPPER, 0, 1, 1)
    service.query_batch(mixed_batch(graph, service.shard_map))
    text = service.metrics.render()
    assert "pmbc_shard_requests_total" in text
    assert "pmbc_shards_up 3" in text
    assert "pmbc_shard_batch_splits" in text
    stats = service.stats()
    assert stats["sharding"]["num_shards"] == 3
    assert stats["sharding"]["batches"] == 1
    assert sum(stats["sharding"]["requests"].values()) >= 1
    assert len(stats["per_shard"]) == 3


def test_close_leaves_no_threads(medium_planted_graph):
    service = ShardedService(medium_planted_graph, 2, config=CONFIG)
    service.start()
    service.query(Side.UPPER, 0, 1, 1)
    service.close()
    assert service.closed
    leaked = [
        t.name
        for t in threading.enumerate()
        if t.name.startswith("pmbc-")
    ]
    assert not leaked, f"leaked threads: {leaked}"
