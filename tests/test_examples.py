"""Smoke tests: every example script must run cleanly end to end."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[1] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_expected_examples_present():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "fraud_detection.py",
        "recommendation.py",
        "gene_expression.py",
        "streaming_monitor.py",
    } <= names


def test_fraud_example_recovers_rings():
    script = next(p for p in EXAMPLES if p.name == "fraud_detection.py")
    result = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True,
        timeout=300,
    )
    assert result.stdout.count("full ring recovered: True") == 2


def test_streaming_example_alerts():
    script = next(p for p in EXAMPLES if p.name == "streaming_monitor.py")
    result = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True,
        timeout=300,
    )
    assert "ALERT" in result.stdout
    assert "ring confirmed" in result.stdout
