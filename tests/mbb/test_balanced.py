"""Unit tests for maximum balanced biclique search."""

from __future__ import annotations

import pytest

from repro.graph.bipartite import BipartiteGraph, Side
from repro.graph.generators import complete_bipartite, random_bipartite, star
from repro.mbb import greedy_balanced_biclique, maximum_balanced_biclique
from repro.mbc.oracle import all_closed_bicliques


def _brute_balanced_k(graph):
    """Max k with a (k x k)-biclique, via closed pairs."""
    best = 0
    for upper, lower in all_closed_bicliques(graph):
        best = max(best, min(len(upper), len(lower)))
    return best


def test_complete_bipartite():
    result = maximum_balanced_biclique(complete_bipartite(3, 5))
    assert result.shape == (3, 3)


def test_star_is_1x1():
    result = maximum_balanced_biclique(star(7))
    assert result.shape == (1, 1)


def test_edgeless():
    graph = BipartiteGraph([[]], num_lower=1)
    assert maximum_balanced_biclique(graph) is None
    assert greedy_balanced_biclique(graph) is None


def test_paper_graph(paper_graph):
    result = maximum_balanced_biclique(paper_graph)
    assert result.is_valid_in(paper_graph)
    k = len(result.upper)
    assert result.shape == (k, k)
    assert k == _brute_balanced_k(paper_graph) == 3


@pytest.mark.parametrize("seed", list(range(12)))
def test_exact_matches_brute_force(seed):
    graph = random_bipartite(7, 7, 0.35 + (seed % 4) * 0.15, seed=seed)
    result = maximum_balanced_biclique(graph)
    expected = _brute_balanced_k(graph)
    if expected == 0:
        assert result is None
    else:
        assert result is not None
        assert result.is_valid_in(graph)
        assert result.shape == (expected, expected)


@pytest.mark.parametrize("seed", list(range(8)))
def test_greedy_is_valid_and_below_exact(seed):
    graph = random_bipartite(8, 8, 0.5, seed=seed)
    greedy = greedy_balanced_biclique(graph)
    exact = maximum_balanced_biclique(graph)
    if greedy is None:
        return
    assert greedy.is_valid_in(graph)
    k = len(greedy.upper)
    assert greedy.shape == (k, k)
    assert k <= len(exact.upper)


def test_greedy_finds_planted_block():
    from repro.graph.generators import with_planted_blocks

    base = random_bipartite(25, 25, 0.04, seed=2).without_isolated_vertices()
    graph = with_planted_blocks(base, [(5, 5)], seed=3)
    greedy = greedy_balanced_biclique(graph)
    assert greedy is not None
    assert len(greedy.upper) >= 3  # heuristic should get close to 5
