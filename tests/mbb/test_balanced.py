"""Unit tests for maximum balanced biclique search."""

from __future__ import annotations

import pytest

from repro.graph.bipartite import BipartiteGraph, Side
from repro.graph.generators import complete_bipartite, random_bipartite, star
from repro.mbb import (
    balanced_biclique_reference,
    greedy_balanced_heuristic,
    personalized_balanced_reference,
)
from repro.mbc.oracle import all_closed_bicliques


def _brute_balanced_k(graph):
    """Max k with a (k x k)-biclique, via closed pairs."""
    best = 0
    for upper, lower in all_closed_bicliques(graph):
        best = max(best, min(len(upper), len(lower)))
    return best


def test_complete_bipartite():
    result = balanced_biclique_reference(complete_bipartite(3, 5))
    assert result.shape == (3, 3)


def test_star_is_1x1():
    result = balanced_biclique_reference(star(7))
    assert result.shape == (1, 1)


def test_edgeless():
    graph = BipartiteGraph([[]], num_lower=1)
    assert balanced_biclique_reference(graph) is None
    assert greedy_balanced_heuristic(graph) is None


def test_paper_graph(paper_graph):
    result = balanced_biclique_reference(paper_graph)
    assert result.is_valid_in(paper_graph)
    k = len(result.upper)
    assert result.shape == (k, k)
    assert k == _brute_balanced_k(paper_graph) == 3


@pytest.mark.parametrize("seed", list(range(12)))
def test_exact_matches_brute_force(seed):
    graph = random_bipartite(7, 7, 0.35 + (seed % 4) * 0.15, seed=seed)
    result = balanced_biclique_reference(graph)
    expected = _brute_balanced_k(graph)
    if expected == 0:
        assert result is None
    else:
        assert result is not None
        assert result.is_valid_in(graph)
        assert result.shape == (expected, expected)


@pytest.mark.parametrize("seed", list(range(8)))
def test_greedy_is_valid_and_below_exact(seed):
    graph = random_bipartite(8, 8, 0.5, seed=seed)
    greedy = greedy_balanced_heuristic(graph)
    exact = balanced_biclique_reference(graph)
    if greedy is None:
        return
    assert greedy.is_valid_in(graph)
    k = len(greedy.upper)
    assert greedy.shape == (k, k)
    assert k <= len(exact.upper)


def test_greedy_finds_planted_block():
    from repro.graph.generators import with_planted_blocks

    base = random_bipartite(25, 25, 0.04, seed=2).without_isolated_vertices()
    graph = with_planted_blocks(base, [(5, 5)], seed=3)
    greedy = greedy_balanced_heuristic(graph)
    assert greedy is not None
    assert len(greedy.upper) >= 3  # heuristic should get close to 5


def _brute_personalized_balanced_k(graph, side, q, floor):
    """Max k with a (k x k)-biclique containing q (0 if none >= floor)."""
    best = 0
    for upper, lower in all_closed_bicliques(graph):
        members = upper if side is Side.UPPER else lower
        if q in members:
            best = max(best, min(len(upper), len(lower)))
    return best if best >= floor else 0


@pytest.mark.parametrize("seed", list(range(6)))
def test_personalized_reference_matches_brute_force(seed):
    graph = random_bipartite(7, 7, 0.35 + (seed % 4) * 0.15, seed=seed)
    for side in Side:
        for q in range(graph.num_vertices_on(side)):
            for tau in (1, 2):
                got = personalized_balanced_reference(
                    graph, side, q, tau, tau
                )
                expected = _brute_personalized_balanced_k(
                    graph, side, q, tau
                )
                if expected == 0:
                    assert got is None
                else:
                    assert got is not None
                    assert got.is_valid_in(graph)
                    assert got.contains(side, q)
                    assert got.shape == (expected, expected)


def test_personalized_reference_isolated_vertex():
    graph = BipartiteGraph([[0], []], num_lower=1)
    assert personalized_balanced_reference(graph, Side.UPPER, 1) is None


def test_deprecated_aliases_warn_and_delegate(paper_graph):
    from repro.mbb import greedy_balanced_biclique, maximum_balanced_biclique

    with pytest.warns(DeprecationWarning, match="balanced_biclique_reference"):
        exact = maximum_balanced_biclique(paper_graph)
    assert exact == balanced_biclique_reference(paper_graph)
    with pytest.warns(DeprecationWarning, match="greedy_balanced_heuristic"):
        greedy = greedy_balanced_biclique(paper_graph)
    assert greedy == greedy_balanced_heuristic(paper_graph)
