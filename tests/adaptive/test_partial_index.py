"""PartialIndex: answer parity, LRU budget eviction, invalidation,
persistence round-trips."""

from __future__ import annotations

import itertools

import pytest

from repro.adaptive import MISS, PartialIndex
from repro.adaptive.partial import entry_size_bytes
from repro.core.construction import build_search_tree
from repro.core.construction_star import build_index_star
from repro.core.dynamic import edge_affected_sets
from repro.core.index import BicliqueArray, PMBCIndex
from repro.core.query import pmbc_index_query
from repro.graph.bipartite import Side


def tree_for(graph, side, q):
    """A vertex's search tree with its private biclique list."""
    array = BicliqueArray()
    tree = build_search_tree(graph, side, q, array)
    return tree, list(array)


def fill(graph, partial, keys):
    for side, q in keys:
        tree, bicliques = tree_for(graph, side, q)
        partial.put(side, q, tree, bicliques)


def all_keys(graph):
    return [
        (side, q)
        for side in Side
        for q in range(graph.num_vertices_on(side))
    ]


# ----------------------------------------------------------------------
# answer parity with the full index


def test_lookup_matches_full_index(paper_graph):
    full = build_index_star(paper_graph)
    partial = PartialIndex(budget_bytes=1 << 22)
    fill(paper_graph, partial, all_keys(paper_graph))
    for (side, q), tau_u, tau_l in itertools.product(
        all_keys(paper_graph), range(1, 5), range(1, 5)
    ):
        got = partial.lookup(side, q, tau_u, tau_l)
        want = pmbc_index_query(full, side, q, tau_u, tau_l)
        assert got is not MISS
        if want is None:
            assert got is None
        else:
            assert got is not None
            assert got.signature() == want.signature()


def test_lookup_matches_on_random_graph(small_random_graph):
    full = build_index_star(small_random_graph)
    partial = PartialIndex(budget_bytes=1 << 22)
    fill(small_random_graph, partial, all_keys(small_random_graph))
    for (side, q), tau in itertools.product(
        all_keys(small_random_graph), range(1, 4)
    ):
        got = partial.lookup(side, q, tau, tau)
        want = pmbc_index_query(full, side, q, tau, tau)
        assert (got is None) == (want is None)
        if want is not None:
            assert got.shape == want.shape


def test_miss_vs_genuine_none(paper_graph):
    partial = PartialIndex(budget_bytes=1 << 20)
    assert partial.lookup(Side.UPPER, 0, 1, 1) is MISS
    tree, bicliques = tree_for(paper_graph, Side.UPPER, 0)
    partial.put(Side.UPPER, 0, tree, bicliques)
    # Resident but unsatisfiable constraints: a genuine None, not MISS.
    assert partial.lookup(Side.UPPER, 0, 99, 99) is None


# ----------------------------------------------------------------------
# budget and LRU eviction


def test_bytes_never_exceed_budget(medium_planted_graph):
    graph = medium_planted_graph
    sizes = [
        entry_size_bytes(*tree_for(graph, side, q))
        for side, q in all_keys(graph)
    ]
    # A budget that fits only a handful of trees forces eviction.
    budget = sorted(sizes)[-1] * 3
    partial = PartialIndex(budget_bytes=budget)
    for side, q in all_keys(graph):
        tree, bicliques = tree_for(graph, side, q)
        partial.put(side, q, tree, bicliques)
        assert partial.total_bytes <= budget
    assert partial.evictions_total > 0
    assert len(partial) >= 1


def test_lru_evicts_least_recently_used(paper_graph):
    keys = all_keys(paper_graph)[:3]
    entries = [(key, *tree_for(paper_graph, *key)) for key in keys]
    budget = sum(
        entry_size_bytes(tree, bicliques)
        for __, tree, bicliques in entries
    )
    partial = PartialIndex(budget_bytes=budget)
    for (side, q), tree, bicliques in entries:
        assert partial.put(side, q, tree, bicliques)[0]
    # Touch the first key so the second becomes the LRU victim.
    partial.lookup(*keys[0], 1, 1)
    big_side, big_q = all_keys(paper_graph)[3]
    tree, bicliques = tree_for(paper_graph, big_side, big_q)
    __, evicted = partial.put(big_side, big_q, tree, bicliques)
    assert keys[0] not in evicted
    assert keys[1] in evicted


def test_oversized_entry_rejected(paper_graph):
    tree, bicliques = tree_for(paper_graph, Side.UPPER, 0)
    partial = PartialIndex(
        budget_bytes=entry_size_bytes(tree, bicliques) - 1
    )
    inserted, evicted = partial.put(Side.UPPER, 0, tree, bicliques)
    assert not inserted
    assert (Side.UPPER, 0) not in partial
    assert partial.total_bytes == 0


def test_replace_reaccounts_bytes(paper_graph):
    tree, bicliques = tree_for(paper_graph, Side.UPPER, 0)
    partial = PartialIndex(budget_bytes=1 << 20)
    partial.put(Side.UPPER, 0, tree, bicliques)
    before = partial.total_bytes
    partial.put(Side.UPPER, 0, tree, bicliques)
    assert partial.total_bytes == before
    assert len(partial) == 1


def test_evict_and_clear(paper_graph):
    partial = PartialIndex(budget_bytes=1 << 20)
    fill(paper_graph, partial, all_keys(paper_graph)[:4])
    assert partial.evict(*all_keys(paper_graph)[0])
    assert not partial.evict(Side.UPPER, 999)
    assert partial.clear() == 3
    assert partial.total_bytes == 0


# ----------------------------------------------------------------------
# invalidation (shared rule with repro.core.dynamic)


def test_invalidate_edge_matches_dynamic_affected_sets(paper_graph):
    partial = PartialIndex(budget_bytes=1 << 22)
    fill(paper_graph, partial, all_keys(paper_graph))
    u, v = 0, paper_graph.neighbors(Side.UPPER, 0)[0]
    affected_upper, affected_lower = edge_affected_sets(
        paper_graph.neighbors(Side.UPPER, u),
        paper_graph.neighbors(Side.LOWER, v),
        u,
        v,
    )
    dropped = set(partial.invalidate_edge(paper_graph, u, v))
    expected = {(Side.UPPER, x) for x in affected_upper} | {
        (Side.LOWER, x) for x in affected_lower
    }
    assert dropped == expected
    for key in expected:
        assert key not in partial
    assert partial.invalidations_total == len(expected)


def test_invalidate_edge_ignores_out_of_range(paper_graph):
    partial = PartialIndex(budget_bytes=1 << 20)
    # Endpoints beyond the graph: only the (hypothetical) endpoints'
    # own keys are affected, and nothing is resident — no crash.
    assert partial.invalidate_edge(paper_graph, 10_000, 10_000) == []


# ----------------------------------------------------------------------
# persistence round-trip


def test_to_index_save_load_warm_from(tmp_path, paper_graph):
    partial = PartialIndex(budget_bytes=1 << 22)
    keys = all_keys(paper_graph)[:5]
    fill(paper_graph, partial, keys)
    exported = partial.to_index(
        paper_graph.num_upper, paper_graph.num_lower
    )
    for fmt, name in (("json", "hot.json"), ("binary", "hot.pmbc")):
        path = tmp_path / name
        exported.save(path, format=fmt)
        loaded = PMBCIndex.load(path)
        warmed = PartialIndex(budget_bytes=1 << 22)
        adopted = warmed.warm_from(loaded)
        assert adopted == sum(
            1 for key in keys if len(tree_for(paper_graph, *key)[0]) > 0
        )
        for side, q in keys:
            for tau in (1, 2, 3):
                want = partial.lookup(side, q, tau, tau)
                got = warmed.lookup(side, q, tau, tau)
                if want is MISS or want is None:
                    assert got is want or got is None
                else:
                    assert got.signature() == want.signature()


def test_warm_from_respects_budget(paper_graph):
    donor = PartialIndex(budget_bytes=1 << 22)
    fill(paper_graph, donor, all_keys(paper_graph))
    exported = donor.to_index(paper_graph.num_upper, paper_graph.num_lower)
    tiny = PartialIndex(budget_bytes=donor.total_bytes // 3)
    tiny.warm_from(exported)
    assert 0 < len(tiny) < len(donor)
    assert tiny.total_bytes <= tiny.budget_bytes
    assert tiny.evictions_total == 0  # skip, never evict, while warming


# ----------------------------------------------------------------------
# introspection


def test_coverage_and_stats(paper_graph):
    partial = PartialIndex(budget_bytes=1 << 20)
    assert partial.coverage(
        paper_graph.num_upper, paper_graph.num_lower
    ) == 0.0
    fill(paper_graph, partial, all_keys(paper_graph)[:2])
    total = paper_graph.num_upper + paper_graph.num_lower
    assert partial.coverage(
        paper_graph.num_upper, paper_graph.num_lower
    ) == pytest.approx(2 / total)
    stats = partial.stats()
    assert stats["entries"] == 2
    assert stats["bytes"] == partial.total_bytes
    assert 0 < stats["utilization"] <= 1


def test_validation():
    with pytest.raises(ValueError):
        PartialIndex(budget_bytes=-1)
