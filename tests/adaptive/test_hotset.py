"""HotSetTracker: decay, promotion ordering, pruning, bounded memory."""

from __future__ import annotations

import pytest

from repro.adaptive import HotSetTracker
from repro.graph.bipartite import Side


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


def test_record_accumulates(clock):
    tracker = HotSetTracker(half_life=10.0, clock=clock)
    for __ in range(4):
        tracker.record(Side.UPPER, 3)
    assert tracker.count(Side.UPPER, 3) == pytest.approx(4.0)
    assert tracker.count(Side.LOWER, 3) == 0.0


def test_counts_halve_every_half_life(clock):
    tracker = HotSetTracker(half_life=10.0, clock=clock)
    for __ in range(8):
        tracker.record(Side.UPPER, 0)
    clock.advance(10.0)
    assert tracker.count(Side.UPPER, 0) == pytest.approx(4.0)
    clock.advance(20.0)
    assert tracker.count(Side.UPPER, 0) == pytest.approx(1.0)


def test_decay_applies_before_new_increment(clock):
    tracker = HotSetTracker(half_life=10.0, clock=clock)
    tracker.record(Side.UPPER, 0, amount=8.0)
    clock.advance(10.0)
    assert tracker.record(Side.UPPER, 0) == pytest.approx(5.0)  # 8/2 + 1


def test_hot_threshold_and_ordering(clock):
    tracker = HotSetTracker(half_life=100.0, clock=clock)
    tracker.record(Side.UPPER, 1, amount=5.0)
    tracker.record(Side.LOWER, 2, amount=9.0)
    tracker.record(Side.UPPER, 7, amount=2.0)  # below threshold
    hot = tracker.hot(3.0)
    assert [key for key, __ in hot] == [(Side.LOWER, 2), (Side.UPPER, 1)]
    assert all(score >= 3.0 for __, score in hot)


def test_hot_tie_break_is_deterministic(clock):
    tracker = HotSetTracker(half_life=100.0, clock=clock)
    tracker.record(Side.LOWER, 5, amount=4.0)
    tracker.record(Side.UPPER, 9, amount=4.0)
    tracker.record(Side.UPPER, 2, amount=4.0)
    keys = [key for key, __ in tracker.hot(1.0)]
    # Ties break on (side.value, vertex): "lower" sorts before "upper".
    assert keys == [(Side.LOWER, 5), (Side.UPPER, 2), (Side.UPPER, 9)]


def test_cooled_vertex_falls_out_of_hot(clock):
    tracker = HotSetTracker(half_life=5.0, clock=clock)
    tracker.record(Side.UPPER, 0, amount=4.0)
    assert tracker.hot(3.0)
    clock.advance(15.0)  # 4 / 8 = 0.5
    assert tracker.hot(3.0) == []


def test_prune_drops_cold_entries(clock):
    tracker = HotSetTracker(half_life=1.0, clock=clock)
    tracker.record(Side.UPPER, 0, amount=1.0)
    tracker.record(Side.UPPER, 1, amount=1000.0)
    clock.advance(10.0)  # 1/1024 vs ~1
    removed = tracker.prune(floor=0.05)
    assert removed == 1
    assert len(tracker) == 1
    assert tracker.count(Side.UPPER, 1) > 0


def test_forget_removes_counter(clock):
    tracker = HotSetTracker(half_life=10.0, clock=clock)
    tracker.record(Side.UPPER, 0, amount=5.0)
    tracker.forget(Side.UPPER, 0)
    assert tracker.count(Side.UPPER, 0) == 0.0
    tracker.forget(Side.UPPER, 0)  # idempotent


def test_max_entries_evicts_coldest(clock):
    tracker = HotSetTracker(half_life=100.0, max_entries=3, clock=clock)
    for vertex, amount in ((0, 1.0), (1, 5.0), (2, 3.0), (3, 4.0)):
        tracker.record(Side.UPPER, vertex, amount=amount)
    assert len(tracker) == 3
    assert tracker.count(Side.UPPER, 0) == 0.0  # coldest discarded
    assert tracker.count(Side.UPPER, 1) == pytest.approx(5.0)


def test_snapshot_is_json_friendly(clock):
    import json

    tracker = HotSetTracker(half_life=10.0, clock=clock)
    tracker.record(Side.UPPER, 4, amount=2.0)
    tracker.record(Side.LOWER, 1, amount=7.0)
    snapshot = tracker.snapshot(limit=1)
    assert json.loads(json.dumps(snapshot)) == snapshot
    assert snapshot[0]["side"] == Side.LOWER.value
    assert snapshot[0]["vertex"] == 1


def test_validation():
    with pytest.raises(ValueError):
        HotSetTracker(half_life=0)
    with pytest.raises(ValueError):
        HotSetTracker(max_entries=0)
