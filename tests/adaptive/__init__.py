"""Tests for the traffic-adaptive partial index (repro.adaptive)."""
