"""BackgroundBuilder: hot-set sweeps, budget pressure, deterministic
shutdown, persistence."""

from __future__ import annotations

import threading

import pytest

from repro.adaptive import BackgroundBuilder, HotSetTracker, PartialIndex
from repro.core.index import PMBCIndex
from repro.exec.executor import create_executor
from repro.graph.bipartite import Side


@pytest.fixture
def executor(paper_graph):
    ex = create_executor("thread", paper_graph, num_workers=1)
    yield ex
    ex.close()


def make_builder(graph, executor, **kwargs):
    partial = kwargs.pop("partial", PartialIndex(budget_bytes=1 << 22))
    hotset = kwargs.pop("hotset", HotSetTracker(half_life=1000.0))
    kwargs.setdefault("threshold", 3.0)
    kwargs.setdefault("interval", 0.02)
    builder = BackgroundBuilder(graph, executor, partial, hotset, **kwargs)
    return builder, partial, hotset


def heat(hotset, *keys, amount=5.0):
    for side, vertex in keys:
        hotset.record(side, vertex, amount=amount)


def test_run_once_builds_hot_vertices(paper_graph, executor):
    builder, partial, hotset = make_builder(paper_graph, executor)
    heat(hotset, (Side.UPPER, 0), (Side.LOWER, 1))
    hotset.record(Side.UPPER, 2, amount=1.0)  # below threshold
    assert builder.run_once() == 2
    assert (Side.UPPER, 0) in partial
    assert (Side.LOWER, 1) in partial
    assert (Side.UPPER, 2) not in partial
    assert builder.builds_total == 2
    # Already-resident vertices are not rebuilt.
    assert builder.run_once() == 0
    assert builder.builds_total == 2


def test_max_builds_per_sweep_caps_a_sweep(paper_graph, executor):
    builder, partial, hotset = make_builder(
        paper_graph, executor, max_builds_per_sweep=1
    )
    heat(hotset, (Side.UPPER, 0), (Side.UPPER, 1), (Side.UPPER, 2))
    assert builder.run_once() == 1
    assert builder.pending() == 2
    assert builder.run_once() == 1
    assert builder.run_once() == 1
    assert builder.pending() == 0


def test_eviction_forgets_hot_counter(paper_graph, executor):
    # A budget fitting roughly one tree makes every build evict the
    # previous resident; the evicted vertex's counter must be dropped
    # so the builder doesn't thrash rebuilding it forever.
    probe_partial = PartialIndex(budget_bytes=1 << 22)
    probe_hot = HotSetTracker(half_life=1000.0)
    probe_hot.record(Side.UPPER, 0, amount=5.0)
    probe_builder = BackgroundBuilder(
        paper_graph, executor, probe_partial, probe_hot, threshold=3.0
    )
    probe_builder.run_once()
    one_tree = probe_partial.total_bytes

    partial = PartialIndex(budget_bytes=one_tree + one_tree // 2)
    hotset = HotSetTracker(half_life=1000.0)
    builder = BackgroundBuilder(
        paper_graph, executor, partial, hotset, threshold=3.0
    )
    heat(hotset, (Side.UPPER, 0), (Side.UPPER, 1), (Side.UPPER, 2))
    builder.run_once()
    assert partial.total_bytes <= partial.budget_bytes
    evicted = partial.evictions_total
    assert evicted > 0
    # Evicted vertices lost their counters: the next sweep is a no-op
    # instead of an eviction loop.
    assert builder.run_once() == 0


def test_background_thread_builds_and_close_joins(paper_graph, executor):
    builder, partial, hotset = make_builder(paper_graph, executor)
    heat(hotset, (Side.UPPER, 0))
    builder.start()
    builder.start()  # idempotent
    assert builder.drain(5.0)
    assert (Side.UPPER, 0) in partial
    builder.close()
    assert not builder.running
    assert builder.closed
    assert all(
        t.name != "pmbc-adaptive-builder" for t in threading.enumerate()
    )
    builder.close()  # idempotent
    with pytest.raises(RuntimeError):
        builder.start()


def test_close_without_start(paper_graph, executor):
    builder, __, __ = make_builder(paper_graph, executor)
    builder.close()
    assert builder.closed


def test_closed_executor_stops_builder_cleanly(paper_graph):
    ex = create_executor("thread", paper_graph, num_workers=1)
    builder, partial, hotset = make_builder(paper_graph, ex)
    heat(hotset, (Side.UPPER, 0))
    ex.close()
    assert builder.run_once() == 0  # no exception escapes
    assert builder.closed
    assert len(partial) == 0


def test_build_failure_is_counted_not_raised(paper_graph):
    class BrokenExecutor:
        kind = "thread"

        def run(self, task, item):
            raise RuntimeError("boom")

    builder, partial, hotset = make_builder(paper_graph, BrokenExecutor())
    heat(hotset, (Side.UPPER, 0))
    assert builder.run_once() == 0
    assert builder.build_failures_total == 1
    assert len(partial) == 0


def test_trace_sink_receives_build_traces(paper_graph, executor):
    summaries = []
    builder, __, hotset = make_builder(
        paper_graph, executor, trace_sink=summaries.append
    )
    heat(hotset, (Side.UPPER, 0))
    builder.run_once()
    assert len(summaries) == 1
    meta = summaries[0]["meta"]
    assert meta["kind"] == "adaptive_build"
    assert meta["build"] == {"side": Side.UPPER.value, "vertex": 0}
    assert meta["inserted"] is True


def test_persists_on_close(tmp_path, paper_graph, executor):
    path = tmp_path / "hot.json"
    builder, partial, hotset = make_builder(
        paper_graph, executor, persist_path=path
    )
    heat(hotset, (Side.UPPER, 0), (Side.LOWER, 2))
    builder.run_once()
    builder.close()
    assert path.exists()
    assert builder.persists_total == 1
    loaded = PMBCIndex.load(path)
    warmed = PartialIndex(budget_bytes=1 << 22)
    assert warmed.warm_from(loaded) == 2
    assert set(warmed.keys()) == set(partial.keys())


def test_empty_final_persist_skipped(tmp_path, paper_graph, executor):
    path = tmp_path / "hot.json"
    builder, __, __ = make_builder(
        paper_graph, executor, persist_path=path
    )
    builder.close()
    assert not path.exists()


def test_stats_shape(paper_graph, executor):
    builder, __, hotset = make_builder(paper_graph, executor)
    heat(hotset, (Side.UPPER, 0))
    builder.run_once()
    stats = builder.stats()
    assert stats["builds"] == 1
    assert stats["running"] is False
    assert stats["pending"] == 0


def test_validation(paper_graph, executor):
    partial = PartialIndex(budget_bytes=1)
    hotset = HotSetTracker()
    for kwargs in (
        {"threshold": 0},
        {"interval": 0},
        {"max_builds_per_sweep": 0},
        {"persist_interval": 0},
    ):
        with pytest.raises(ValueError):
            BackgroundBuilder(
                paper_graph, executor, partial, hotset, **kwargs
            )
