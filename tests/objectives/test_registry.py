"""Unit tests for the query-family objective interface and registry."""

from __future__ import annotations

import pytest

from repro.core.query import QueryRequest
from repro.objectives import (
    BALANCED_OBJECTIVE,
    DEFAULT_OBJECTIVE,
    PMBC_OBJECTIVE,
    BalancedObjective,
    Objective,
    get_objective,
    objective_kinds,
    register_objective,
)


def test_default_objective_is_pmbc():
    assert DEFAULT_OBJECTIVE == "pmbc"
    assert get_objective(None) is PMBC_OBJECTIVE
    assert get_objective("pmbc") is PMBC_OBJECTIVE


def test_objective_kinds_lists_default_first():
    kinds = objective_kinds()
    assert kinds[0] == "pmbc"
    assert "balanced" in kinds


def test_get_objective_passes_instances_through():
    assert get_objective(PMBC_OBJECTIVE) is PMBC_OBJECTIVE
    assert get_objective(BALANCED_OBJECTIVE) is BALANCED_OBJECTIVE


def test_get_objective_rejects_unknown_names():
    with pytest.raises(ValueError, match="balanced"):
        get_objective("biplex")


def test_reregistering_same_instance_is_idempotent():
    register_objective(PMBC_OBJECTIVE)
    assert get_objective("pmbc") is PMBC_OBJECTIVE


def test_registering_conflicting_instance_raises():
    with pytest.raises(ValueError, match="balanced"):
        register_objective(BalancedObjective())


def test_pmbc_objective_scores_edge_count():
    assert PMBC_OBJECTIVE.score(3, 4) == 12
    assert PMBC_OBJECTIVE.bound(5, 7) == 35
    assert PMBC_OBJECTIVE.uses_size_bounds
    assert PMBC_OBJECTIVE.index_compatible
    assert PMBC_OBJECTIVE.effective_floors(2, 3) == (2, 3)


def test_pmbc_round_floors_reproduce_algorithm_one():
    # With an incumbent of 12 edges and a working floor of 4, the next
    # round needs tau_p >= 12 // 4 = 3, and floor_w halves.
    assert PMBC_OBJECTIVE.round_floors(12, 4, 1, 1) == (3, 2)
    # The caller's minimums are never relaxed.
    assert PMBC_OBJECTIVE.round_floors(0, 4, 2, 3) == (2, 3)


def test_balanced_objective_scores_min_side():
    assert BALANCED_OBJECTIVE.score(3, 5) == 3
    assert BALANCED_OBJECTIVE.bound(4, 9) == 4
    assert not BALANCED_OBJECTIVE.uses_size_bounds
    assert not BALANCED_OBJECTIVE.index_compatible


def test_balanced_effective_floors_symmetrize():
    assert BALANCED_OBJECTIVE.effective_floors(2, 5) == (5, 5)
    assert BALANCED_OBJECTIVE.effective_floors(4, 1) == (4, 4)


def test_balanced_round_floors_terminate():
    # Raising only the upper floor preserves the driver's
    # "floor_w decayed to tau_w" termination test.
    tau_p, tau_w = BALANCED_OBJECTIVE.round_floors(3, 8, 2, 2)
    assert tau_p == 4
    assert tau_w == 4
    __, final_w = BALANCED_OBJECTIVE.round_floors(3, 2, 2, 2)
    assert final_w == 2  # the driver's exit round is reachable


def test_balanced_finalize_trims_keeping_anchor():
    upper, lower = BALANCED_OBJECTIVE.finalize(
        frozenset({1, 5, 9}), frozenset({2, 4}), anchor_upper=9
    )
    assert len(upper) == len(lower) == 2
    assert 9 in upper


def test_abstract_objective_requires_score():
    with pytest.raises(NotImplementedError):
        Objective().score(1, 1)


def test_query_request_validates_objective():
    assert QueryRequest("upper", 0).objective == "pmbc"
    balanced = QueryRequest("upper", 0, objective="balanced")
    assert balanced.key[-1] == "balanced"
    assert balanced.to_json()["objective"] == "balanced"
    with pytest.raises(ValueError):
        QueryRequest("upper", 0, objective="biplex")
    with pytest.raises(TypeError):
        QueryRequest("upper", 0, objective=7)


def test_query_request_objective_separates_identity():
    pmbc = QueryRequest("upper", 0, 2, 2)
    balanced = QueryRequest("upper", 0, 2, 2, objective="balanced")
    assert pmbc != balanced
    assert pmbc.key != balanced.key
    assert "objective" not in pmbc.to_json()


def test_index_lookups_reject_non_pmbc_objectives(paper_graph):
    from repro.core import build_index_star
    from repro.core.query import pmbc_index_query, pmbc_index_topk
    from repro.graph.bipartite import Side

    index = build_index_star(paper_graph)
    request = QueryRequest(Side.UPPER, 0, 1, 1, objective="balanced")
    with pytest.raises(ValueError, match="not answerable from a PMBC index"):
        pmbc_index_query(index, request)
    with pytest.raises(ValueError, match="not answerable from a PMBC index"):
        pmbc_index_topk(index, request, k=2)
    # The default objective keeps working untouched.
    assert pmbc_index_query(index, QueryRequest(Side.UPPER, 0)) is not None
