"""Unit tests for maximal biclique enumeration."""

from __future__ import annotations

import pytest

from repro.graph.bipartite import Side
from repro.graph.generators import complete_bipartite, random_bipartite, star
from repro.mbc.oracle import all_closed_bicliques, personalized_max_brute
from repro.mbe.imbea import (
    enumerate_maximal_bicliques,
    maximal_biclique_count,
    personalized_max_from_enumeration,
)


def _maximal_via_closures(graph):
    """Independent maximal-biclique oracle from closed pairs."""
    maximal = set()
    for upper, lower in all_closed_bicliques(graph):
        # Close on both sides: a pair is maximal iff each side is the
        # full common neighborhood of the other.
        common_upper = set(range(graph.num_upper))
        for v in lower:
            common_upper &= graph.neighbor_set(Side.LOWER, v)
        common_lower = set(range(graph.num_lower))
        for u in common_upper:
            common_lower &= graph.neighbor_set(Side.UPPER, u)
        if common_upper and common_lower:
            maximal.add(
                (tuple(sorted(common_upper)), tuple(sorted(common_lower)))
            )
    return maximal


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
def test_enumeration_matches_closure_oracle(seed):
    graph = random_bipartite(6, 7, 0.45, seed=seed)
    got = {b.signature() for b in enumerate_maximal_bicliques(graph)}
    assert got == _maximal_via_closures(graph)


def test_enumeration_on_paper_graph(paper_graph):
    got = {b.signature() for b in enumerate_maximal_bicliques(paper_graph)}
    assert got == _maximal_via_closures(paper_graph)
    # Spot check: the 4x3 block is maximal.
    def u(name):
        return paper_graph.vertex_by_label(Side.UPPER, name)

    def v(name):
        return paper_graph.vertex_by_label(Side.LOWER, name)

    block = (
        tuple(sorted(u(n) for n in ("u1", "u2", "u3", "u4"))),
        tuple(sorted(v(n) for n in ("v1", "v2", "v3"))),
    )
    assert block in got


def test_complete_bipartite_has_one_maximal():
    graph = complete_bipartite(3, 4)
    assert maximal_biclique_count(graph) == 1


def test_star_has_one_maximal():
    graph = star(5)
    bicliques = list(enumerate_maximal_bicliques(graph))
    assert len(bicliques) == 1
    assert bicliques[0].shape == (1, 5)


def test_all_results_are_maximal_bicliques(medium_planted_graph):
    graph = medium_planted_graph
    count = 0
    for biclique in enumerate_maximal_bicliques(graph, limit=50_000):
        count += 1
        if count > 200:
            break
        assert biclique.is_valid_in(graph)
        # Not extendable by any vertex.
        for u in range(graph.num_upper):
            if u not in biclique.upper:
                assert not (
                    biclique.lower <= graph.neighbor_set(Side.UPPER, u)
                )
    assert count > 0


def test_limit_guard():
    graph = random_bipartite(8, 8, 0.6, seed=1)
    with pytest.raises(RuntimeError):
        list(enumerate_maximal_bicliques(graph, limit=1))


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
@pytest.mark.parametrize("constraints", [(1, 1), (2, 2), (3, 2), (2, 4)])
def test_constrained_enumeration_equals_filtered(seed, constraints):
    """MineLMBC-style pruning returns exactly the size-filtered set."""
    min_upper, min_lower = constraints
    graph = random_bipartite(6, 7, 0.5, seed=seed)
    unconstrained = {
        b.signature()
        for b in enumerate_maximal_bicliques(graph)
        if b.satisfies(min_upper, min_lower)
    }
    constrained = {
        b.signature()
        for b in enumerate_maximal_bicliques(
            graph, min_upper=min_upper, min_lower=min_lower
        )
    }
    assert constrained == unconstrained


def test_constrained_enumeration_validation(paper_graph):
    with pytest.raises(ValueError):
        list(enumerate_maximal_bicliques(paper_graph, min_upper=0))
    with pytest.raises(ValueError):
        list(enumerate_maximal_bicliques(paper_graph, min_lower=-1))


@pytest.mark.parametrize("seed", [0, 3, 6])
def test_personalized_from_enumeration_matches_brute(seed):
    graph = random_bipartite(7, 6, 0.45, seed=seed)
    for side in Side:
        for q in range(graph.num_vertices_on(side)):
            if graph.degree(side, q) == 0:
                continue
            for tau_u, tau_l in ((1, 1), (2, 2)):
                via_enum = personalized_max_from_enumeration(
                    graph, side, q, tau_u, tau_l
                )
                via_brute = personalized_max_brute(graph, side, q, tau_u, tau_l)
                enum_size = via_enum.num_edges if via_enum else 0
                brute_size = (
                    len(via_brute[0]) * len(via_brute[1]) if via_brute else 0
                )
                assert enum_size == brute_size
