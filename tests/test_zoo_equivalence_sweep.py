"""Zoo-scale equivalence sweep: index vs online on every vertex.

The oracle-based tests cover small random graphs exhaustively; this
sweep covers a realistic dataset end to end — every vertex of the
Writers analogue, multiple constraint settings, index answers checked
against the online algorithm (which is itself oracle-verified
elsewhere).
"""

from __future__ import annotations

import pytest

from repro.core import build_index_star, pmbc_index_query, pmbc_online_star
from repro.corenum.bounds import compute_bounds
from repro.datasets.zoo import load_dataset
from repro.graph.bipartite import Side


@pytest.fixture(scope="module")
def setup():
    graph = load_dataset("Writers")
    bounds = compute_bounds(graph)
    index = build_index_star(graph, bounds=bounds)
    return graph, bounds, index


@pytest.mark.parametrize("tau_u,tau_l", [(1, 1), (2, 2), (3, 4)])
def test_every_vertex_agrees(setup, tau_u, tau_l):
    graph, bounds, index = setup
    mismatches = []
    for side in Side:
        for q in range(graph.num_vertices_on(side)):
            via_index = pmbc_index_query(index, side, q, tau_u, tau_l)
            via_online = pmbc_online_star(
                graph, side, q, tau_u, tau_l, bounds=bounds
            )
            a = via_index.num_edges if via_index else 0
            b = via_online.num_edges if via_online else 0
            if a != b:
                mismatches.append((side, q, a, b))
            if via_index is not None:
                assert via_index.contains(side, q)
                assert via_index.satisfies(tau_u, tau_l)
                assert via_index.is_valid_in(graph)
    assert not mismatches, mismatches[:10]
