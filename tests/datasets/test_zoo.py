"""Unit tests for the dataset zoo."""

from __future__ import annotations

import pytest

from repro.datasets.zoo import (
    ZOO,
    dataset_names,
    load_dataset,
    scalability_dataset_names,
    spec,
)


def test_ten_datasets_in_paper_order():
    names = dataset_names()
    assert len(names) == 10
    assert names[0] == "Writers"
    assert names[-1] == "DBLP"
    # Table II orders by |E| ascending; target sizes must as well.
    targets = [ZOO[name].num_edges for name in names]
    assert targets == sorted(targets)
    paper = [ZOO[name].paper_edges for name in names]
    assert paper == sorted(paper)


def test_scalability_subset():
    subset = scalability_dataset_names()
    assert subset == ["ActorMovies", "Wikipedia", "Amazon", "DBLP"]
    assert all(name in ZOO for name in subset)


def test_spec_lookup():
    dataset = spec("Teams")
    assert dataset.category == "Affiliation"
    assert dataset.paper_edges == 1_366_466
    with pytest.raises(KeyError):
        spec("NotADataset")


def test_layer_ratio_preserved():
    """Analogue |U|/|L| stays within 2x of the paper's ratio."""
    for dataset in ZOO.values():
        paper_ratio = dataset.paper_upper / dataset.paper_lower
        ours = dataset.num_upper / dataset.num_lower
        assert paper_ratio / 2 <= ours <= paper_ratio * 2, dataset.name


@pytest.mark.parametrize("name", ["Writers", "Teams", "DBLP"])
def test_load_dataset_properties(name):
    graph = load_dataset(name)
    assert graph.num_edges > 0
    assert graph.degree_one_free()
    # Deterministic and cached.
    assert load_dataset(name) is graph


def test_generated_size_near_target():
    for name in ("Writers", "YouTube"):
        dataset = spec(name)
        graph = load_dataset(name)
        # Planted blocks add edges, duplicate draws remove some; stay
        # within a broad band of the target.
        assert 0.5 * dataset.num_edges <= graph.num_edges <= 1.6 * dataset.num_edges


def test_graphs_have_nontrivial_bicliques():
    """Planted blocks must leave a biclique of >= 9 edges somewhere."""
    from repro.core import pmbc_online_star
    from repro.bench.workloads import top_degree_queries

    graph = load_dataset("Writers")
    best = 0
    for side, q in top_degree_queries(graph, num_queries=5, seed=1):
        result = pmbc_online_star(graph, side, q, 2, 2)
        if result:
            best = max(best, result.num_edges)
    assert best >= 9
