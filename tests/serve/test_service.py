"""Behavioural tests for :class:`repro.serve.service.PMBCService`.

Covers the ISSUE's required scenarios: concurrent correctness against
sequential answers, deadline handling, queue-full admission control,
single-flight dedup (backend runs once), and backend degradation.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import build_index_star, pmbc_online_star
from repro.graph.bipartite import Side
from repro.serve import (
    DeadlineExceededError,
    InvalidRequestError,
    PMBCService,
    QueueFullError,
    ServiceClosedError,
    ServiceConfig,
)


class _SlowBackend:
    """A controllable backend used to create sustained load."""

    name = "slow"

    def __init__(self, delay: float = 0.0, release: threading.Event | None = None):
        self.delay = delay
        self.release = release
        self.calls = 0
        self._lock = threading.Lock()

    def query(self, request):
        with self._lock:
            self.calls += 1
        if self.release is not None:
            self.release.wait(10)
        if self.delay:
            time.sleep(self.delay)
        return None


class _FailingBackend:
    name = "failing"

    def __init__(self):
        self.calls = 0

    def query(self, request):
        self.calls += 1
        raise RuntimeError("synthetic backend outage")


# ----------------------------------------------------------------------
# correctness under concurrency


def test_concurrent_results_match_sequential(medium_planted_graph):
    graph = medium_planted_graph
    index = build_index_star(graph)
    workload = [
        (side, vertex, tau_u, tau_l)
        for side in Side
        for vertex in range(0, graph.num_vertices_on(side), 3)
        for tau_u, tau_l in ((1, 1), (2, 2))
    ]
    expected = {
        req: pmbc_online_star(graph, req[0], req[1], req[2], req[3])
        for req in workload
    }

    config = ServiceConfig(num_workers=8, max_queue=512)
    results: dict[tuple, object] = {}
    errors: list[BaseException] = []
    lock = threading.Lock()

    with PMBCService(graph, index=index, config=config) as service:

        def client(offset: int) -> None:
            mine = workload[offset:] + workload[:offset]
            for req in mine:
                try:
                    outcome = service.query(*req)
                except BaseException as exc:
                    with lock:
                        errors.append(exc)
                    return
                with lock:
                    results[req] = outcome.biclique

        threads = [
            threading.Thread(target=client, args=(i * 7,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = service.stats()

    assert not errors
    assert len(results) == len(workload)
    for req, answer in results.items():
        reference = expected[req]
        if reference is None:
            assert answer is None, req
        else:
            assert answer is not None, req
            # Maxima are not unique; compare by objective value.
            assert answer.num_edges == reference.num_edges, req
            assert answer.satisfies(req[2], req[3])
            assert answer.contains(req[0], req[1])
            assert answer.is_valid_in(graph)
    served = stats["requests"]["ok"] + stats["requests"]["empty"]
    assert served == len(workload) * 8
    assert stats["latency_seconds"]["count"] == served


# ----------------------------------------------------------------------
# deadlines


def test_deadline_exceeded_while_computing(paper_graph):
    release = threading.Event()
    config = ServiceConfig(num_workers=1, max_queue=8)
    with PMBCService(paper_graph, config=config) as service:
        service._backends = [_SlowBackend(release=release)]
        start = time.monotonic()
        with pytest.raises(DeadlineExceededError):
            service.query(Side.UPPER, 0, deadline=0.1)
        elapsed = time.monotonic() - start
        assert elapsed < 5  # returned on the deadline, not the backend
        release.set()
        deadline = time.monotonic() + 5
        while (
            service.stats()["requests"]["deadline_exceeded"] < 1
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
    assert service.stats()["requests"]["deadline_exceeded"] == 1


def test_deadline_expired_in_queue(paper_graph):
    release = threading.Event()
    backend = _SlowBackend(release=release)
    config = ServiceConfig(num_workers=1, max_queue=8)
    with PMBCService(paper_graph, config=config) as service:
        service._backends = [backend]
        # Occupy the single worker, then queue a request with a tiny
        # budget; it must expire before any backend call.
        blocker = service.submit(Side.UPPER, 0, deadline=30)
        queued = service.submit(Side.UPPER, 1, deadline=0.05)
        time.sleep(0.2)
        release.set()
        with pytest.raises(DeadlineExceededError):
            queued.result(timeout=5)
        blocker.result(timeout=5)
    assert backend.calls == 1  # the expired request never ran


def test_invalid_deadline_rejected(paper_graph):
    with PMBCService(paper_graph, config=ServiceConfig(num_workers=1)) as s:
        with pytest.raises(InvalidRequestError):
            s.query(Side.UPPER, 0, deadline=-1)


# ----------------------------------------------------------------------
# admission control


def test_queue_full_rejects_immediately(paper_graph):
    release = threading.Event()
    backend = _SlowBackend(release=release)
    config = ServiceConfig(num_workers=1, max_queue=2)
    with PMBCService(paper_graph, config=config) as service:
        service._backends = [backend]
        # One request occupies the worker ...
        futures = [service.submit(Side.UPPER, 0)]
        deadline = time.monotonic() + 5
        while backend.calls < 1 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert backend.calls == 1
        # ... and two more fill the queue.
        futures += [service.submit(Side.UPPER, v) for v in (1, 2)]
        start = time.monotonic()
        with pytest.raises(QueueFullError):
            for v in range(3, 10):
                service.submit(Side.UPPER, v)
        assert time.monotonic() - start < 1  # rejected, not blocked
        assert service.stats()["requests"]["queue_full"] >= 1
        release.set()
        for future in futures:
            future.result(timeout=5)


# ----------------------------------------------------------------------
# single-flight dedup


def test_identical_concurrent_queries_run_backend_once(paper_graph):
    release = threading.Event()
    backend = _SlowBackend(release=release)
    config = ServiceConfig(num_workers=8, max_queue=64)
    with PMBCService(paper_graph, config=config) as service:
        service._backends = [backend]
        futures = [
            service.submit(Side.UPPER, 0, 1, 1, deadline=10)
            for __ in range(8)
        ]
        # Wait until every worker has picked its request up and joined
        # the flight, then let the leader finish.
        deadline = time.monotonic() + 5
        while backend.calls < 1 and time.monotonic() < deadline:
            time.sleep(0.005)
        time.sleep(0.1)
        release.set()
        outcomes = [f.result(timeout=10) for f in futures]
        stats = service.stats()

    assert backend.calls == 1  # deduplicated: the backend ran once
    shared = [o for o in outcomes if o.shared]
    assert len(shared) == 7
    assert stats["singleflight"]["leaders"] == 1
    assert stats["singleflight"]["shared"] >= 7


def test_different_keys_are_not_deduplicated(paper_graph):
    backend = _SlowBackend()
    config = ServiceConfig(num_workers=4, max_queue=64)
    with PMBCService(paper_graph, config=config) as service:
        service._backends = [backend]
        futures = [
            service.submit(Side.UPPER, 0, tau, 1) for tau in range(1, 5)
        ]
        for f in futures:
            f.result(timeout=5)
    assert backend.calls == 4


# ----------------------------------------------------------------------
# degradation


def test_fallback_to_next_backend_on_failure(paper_graph):
    failing = _FailingBackend()
    config = ServiceConfig(num_workers=2, max_queue=16)
    with PMBCService(paper_graph, config=config) as service:
        service._backends = [failing] + service._backends[-2:]
        outcome = service.query(Side.UPPER, 0, 1, 1)
        stats = service.stats()
    assert failing.calls == 1
    assert outcome.backend == "engine"
    assert outcome.biclique is not None
    expected = pmbc_online_star(paper_graph, Side.UPPER, 0, 1, 1)
    assert outcome.biclique.num_edges == expected.num_edges
    assert stats["requests"]["ok"] == 1


def test_index_primary_engine_fallback_order(paper_graph):
    index = build_index_star(paper_graph)
    with PMBCService(paper_graph, index=index) as service:
        assert service.backend_names == ("index", "engine", "online")
        assert service.query(Side.UPPER, 0).backend == "index"
    with PMBCService(paper_graph) as service:
        assert service.backend_names == ("engine", "online")
        assert service.query(Side.UPPER, 0).backend == "engine"


# ----------------------------------------------------------------------
# validation + lifecycle


def test_invalid_requests_never_enter_the_queue(paper_graph):
    with PMBCService(paper_graph, config=ServiceConfig(num_workers=1)) as s:
        with pytest.raises(InvalidRequestError):
            s.query(Side.UPPER, 10_000)
        with pytest.raises(InvalidRequestError):
            s.query(Side.UPPER, 0, tau_u=0)
        with pytest.raises(InvalidRequestError):
            s.query("upper", 0)  # not a Side
        assert s.stats()["requests"]["invalid"] == 3
        assert s.stats()["queue"]["depth"] == 0


def test_closed_service_rejects(paper_graph):
    service = PMBCService(paper_graph, config=ServiceConfig(num_workers=1))
    with pytest.raises(ServiceClosedError):
        service.query(Side.UPPER, 0)  # never started
    service.start()
    service.close()
    with pytest.raises(ServiceClosedError):
        service.query(Side.UPPER, 0)
    service.close()  # idempotent


def test_engine_cache_is_shared_across_requests(paper_graph):
    with PMBCService(paper_graph, config=ServiceConfig(num_workers=4)) as s:
        for __ in range(6):
            s.query(Side.UPPER, 0, 1, 1)
        cache = s.stats()["engine_cache"]
    # Single-flight may collapse some, but repeats must hit the LRU.
    assert cache["hits"] + cache["misses"] >= 1
    assert cache["misses"] >= 1
    assert cache["hit_rate"] <= 1.0
