"""End-to-end tests of the asyncio front-end.

The same stdlib client the threaded server tests use, pointed at an
:class:`AsyncPMBCServer` — once over a plain service and once over the
shard router, which is the pairing ``pmbc serve --shards N`` deploys.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve import (
    AsyncPMBCServer,
    InvalidRequestError,
    PMBCClient,
    PMBCService,
    ServiceConfig,
)
from repro.serve.server import SCHEMA_VERSION
from repro.shard import ShardedService


@pytest.fixture()
def async_sharded(paper_graph):
    """An async server over a 2-shard router on an ephemeral port."""
    service = ShardedService(
        paper_graph, 2, config=ServiceConfig(num_workers=2, max_queue=32)
    ).start()
    server = AsyncPMBCServer(service, port=0).start()
    try:
        yield paper_graph, server, PMBCClient(server.url, timeout=10)
    finally:
        server.shutdown()


def test_healthz_and_schema_version(async_sharded):
    __, __, client = async_sharded
    assert client.healthz()
    payload = client.query(side="upper", vertex=0)
    assert payload["schema_version"] == SCHEMA_VERSION


def test_query_carries_shard_and_degraded(async_sharded):
    graph, server, client = async_sharded
    service = server.service
    payload = client.query(side="upper", vertex=0, tau_u=2, tau_l=2)
    assert payload["result"] is not None
    from repro.graph.bipartite import Side

    assert payload["shard"] == service.shard_map.shard_of(Side.UPPER, 0)
    assert payload["degraded"] is False


def test_query_get_matches_post(async_sharded):
    __, __, client = async_sharded
    get = client.query_get(side="upper", vertex=1, tau_u=1, tau_l=1)
    post = client.query(side="upper", vertex=1, tau_u=1, tau_l=1)
    assert get["result"] == post["result"]


def test_batch_splits_across_shards(async_sharded):
    graph, __, client = async_sharded
    items = [
        {"side": "upper", "vertex": 0},
        {"side": "upper", "vertex": 0, "tau_u": 2, "tau_l": 2},
        {"side": "lower", "vertex": graph.num_lower - 1},
        {"side": "upper", "vertex": graph.num_upper - 1},
    ]
    payload = client.query_batch(items)
    assert len(payload["results"]) == len(items)
    assert payload["degraded"] is False
    assert all(r["result"] is not None for r in payload["results"])


def test_verify_and_explain_round_trip(async_sharded):
    __, __, client = async_sharded
    payload = client.query(
        side="upper", vertex=0, tau_u=1, tau_l=1, verify=True, explain=True
    )
    assert payload["verified"]["valid"], payload["verified"]["reasons"]
    assert payload["trace"]["trace_id"]


def test_unknown_field_maps_to_400(async_sharded):
    __, __, client = async_sharded
    with pytest.raises(InvalidRequestError):
        client.query_get(side="upper", vertex=0, bogus=1)
    with pytest.raises(InvalidRequestError):
        client.query(side="sideways", vertex=0)


def test_unknown_route_is_404(async_sharded):
    __, server, __ = async_sharded
    request = urllib.request.Request(server.url + "/nope")
    with pytest.raises(urllib.error.HTTPError) as info:
        urllib.request.urlopen(request, timeout=10)
    assert info.value.code == 404
    assert json.loads(info.value.read())["error"] == "NotFound"


def test_method_not_allowed_is_405(async_sharded):
    __, server, __ = async_sharded
    request = urllib.request.Request(
        server.url + "/healthz", data=b"{}", method="POST"
    )
    with pytest.raises(urllib.error.HTTPError) as info:
        urllib.request.urlopen(request, timeout=10)
    assert info.value.code == 405


def test_metrics_and_stats_surface_shard_series(async_sharded):
    __, __, client = async_sharded
    client.query(side="upper", vertex=0)
    text = client.metrics()
    assert "pmbc_shard_requests_total" in text
    assert "pmbc_shards_up 2" in text
    stats = client.stats()
    assert stats["sharding"]["num_shards"] == 2
    assert len(stats["per_shard"]) == 2


def test_debug_traces_lookup(async_sharded):
    __, __, client = async_sharded
    payload = client.query(side="upper", vertex=0, explain=True)
    trace_id = payload["trace"]["trace_id"]
    listing = client.debug_traces(limit=5)
    assert listing["traces"]
    found = client.debug_traces(trace_id=trace_id)
    assert found["trace"]["trace_id"] == trace_id


def test_plain_service_behind_async_front_end(paper_graph):
    """The asyncio front-end also fronts an unsharded service."""
    service = PMBCService(
        paper_graph, config=ServiceConfig(num_workers=2)
    ).start()
    with AsyncPMBCServer(service, port=0) as server:
        client = PMBCClient(server.url, timeout=10)
        payload = client.query(side="upper", vertex=0)
        assert payload["result"] is not None
        assert payload["degraded"] is False
        assert "shard" not in payload
    assert service.closed


def test_shutdown_closes_service_and_leaks_no_threads(paper_graph):
    service = ShardedService(
        paper_graph, 2, config=ServiceConfig(num_workers=2)
    ).start()
    server = AsyncPMBCServer(service, port=0).start()
    client = PMBCClient(server.url, timeout=10)
    assert client.healthz()
    server.shutdown()
    assert service.closed
    leaked = [
        t.name
        for t in threading.enumerate()
        if t.name.startswith(("pmbc-aserve", "pmbc-serve"))
    ]
    assert not leaked, f"leaked threads: {leaked}"
