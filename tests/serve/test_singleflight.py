"""Unit tests for in-flight request deduplication."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve.singleflight import SingleFlight, SingleFlightTimeout


def test_single_caller_is_leader_not_shared():
    flight = SingleFlight()
    result = flight.do("k", lambda: 42)
    assert result.value == 42
    assert result.leader
    assert not result.shared
    assert flight.in_flight() == 0


def test_concurrent_identical_keys_compute_once():
    flight = SingleFlight()
    calls = []
    release = threading.Event()
    started = threading.Event()

    def compute():
        calls.append(1)
        started.set()
        release.wait(5)
        return "answer"

    results = []
    errors = []

    def worker():
        try:
            results.append(flight.do("k", compute))
        except BaseException as exc:  # pragma: no cover - diagnostic
            errors.append(exc)

    threads = [threading.Thread(target=worker) for __ in range(8)]
    threads[0].start()
    assert started.wait(5)  # the leader is inside compute()
    for t in threads[1:]:
        t.start()
    # Give followers a moment to join the flight, then release.
    deadline = time.monotonic() + 5
    while flight.in_flight() == 0 and time.monotonic() < deadline:
        time.sleep(0.001)
    time.sleep(0.05)
    release.set()
    for t in threads:
        t.join(5)
    assert not errors
    assert len(calls) == 1  # the backend ran exactly once
    assert len(results) == 8
    assert all(r.value == "answer" for r in results)
    leaders = [r for r in results if r.leader]
    assert len(leaders) == 1
    assert leaders[0].shared  # it handed its answer to followers
    assert all(r.shared for r in results if not r.leader)


def test_sequential_calls_recompute():
    flight = SingleFlight()
    calls = []
    for __ in range(3):
        flight.do("k", lambda: calls.append(1))
    assert len(calls) == 3  # collapsing, not caching


def test_distinct_keys_do_not_collapse():
    flight = SingleFlight()
    assert flight.do("a", lambda: 1).value == 1
    assert flight.do("b", lambda: 2).value == 2


def test_exception_propagates_to_leader_and_followers():
    flight = SingleFlight()
    release = threading.Event()
    started = threading.Event()

    def boom():
        started.set()
        release.wait(5)
        raise RuntimeError("backend down")

    outcomes = []

    def worker():
        try:
            flight.do("k", boom)
            outcomes.append("ok")
        except RuntimeError:
            outcomes.append("raised")

    threads = [threading.Thread(target=worker) for __ in range(4)]
    threads[0].start()
    assert started.wait(5)
    for t in threads[1:]:
        t.start()
    time.sleep(0.05)
    release.set()
    for t in threads:
        t.join(5)
    assert outcomes == ["raised"] * 4


def test_follower_timeout_leaves_flight_running():
    flight = SingleFlight()
    release = threading.Event()
    started = threading.Event()
    leader_result = []

    def slow():
        started.set()
        release.wait(5)
        return "late"

    leader = threading.Thread(
        target=lambda: leader_result.append(flight.do("k", slow))
    )
    leader.start()
    assert started.wait(5)
    with pytest.raises(SingleFlightTimeout):
        flight.do("k", slow, timeout=0.01)
    release.set()
    leader.join(5)
    assert leader_result and leader_result[0].value == "late"
