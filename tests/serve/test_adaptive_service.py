"""PMBCService with the traffic-adaptive partial index enabled."""

from __future__ import annotations

import threading

import pytest

from repro.core.construction_star import build_index_star
from repro.graph.bipartite import Side
from repro.serve.service import PMBCService, ServiceConfig


def adaptive_config(**overrides):
    defaults = dict(
        num_workers=2,
        adaptive=True,
        index_budget_mb=4.0,
        hot_threshold=3.0,
        build_interval=0.02,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def warm_up(service, side, vertex, tau_u=1, tau_l=1, times=4):
    """Query past the promotion threshold, then drain the builder."""
    for __ in range(times):
        result = service.query(side, vertex, tau_u, tau_l)
    assert service.builder.drain(10.0), "background builder did not drain"
    return result


# ----------------------------------------------------------------------
# the partial tier answers warmed head queries


def test_warm_query_served_by_partial_tier(paper_graph):
    with PMBCService(paper_graph, config=adaptive_config()) as service:
        assert service.backend_names[0] == "partial"
        warm_up(service, Side.UPPER, 0)
        result = service.query(Side.UPPER, 0, 1, 1, explain=True)
        assert result.backend == "partial"
        assert result.trace["meta"]["backend"] == "partial"
        assert result.trace["counters"].get("partial_hits") == 1
        stats = service.stats()
        assert stats["adaptive"]["hits"] >= 1
        assert (
            service.metrics.get("pmbc_adaptive_hits_total").total() >= 1
        )


def test_partial_answer_matches_other_backends(medium_planted_graph):
    config = adaptive_config(hot_threshold=2.0)
    with PMBCService(medium_planted_graph, config=config) as service:
        cold = service.query(Side.UPPER, 0, 2, 2)
        assert cold.backend != "partial"
        warm_up(service, Side.UPPER, 0, 2, 2)
        warm = service.query(Side.UPPER, 0, 2, 2)
        assert warm.backend == "partial"
        if cold.biclique is None:
            assert warm.biclique is None
        else:
            assert warm.biclique.shape == cold.biclique.shape


def test_miss_falls_through_without_fallback_count(paper_graph):
    with PMBCService(paper_graph, config=adaptive_config()) as service:
        result = service.query(Side.UPPER, 0, 1, 1)
        assert result.backend in ("engine", "process")
        assert result.biclique is not None
        stats = service.stats()
        assert stats["adaptive"]["misses"] >= 1
        fallbacks = service.metrics.get("pmbc_backend_fallbacks_total")
        assert fallbacks.total() == 0


def test_batch_served_by_partial_only_when_fully_covered(paper_graph):
    with PMBCService(paper_graph, config=adaptive_config()) as service:
        warm_up(service, Side.UPPER, 0)
        hot = [(Side.UPPER.value, 0, 1, 1), (Side.UPPER.value, 0, 2, 1)]
        assert service.query_batch(hot).backend == "partial"
        mixed = hot + [(Side.LOWER.value, 0, 1, 1)]
        assert service.query_batch(mixed).backend != "partial"


# ----------------------------------------------------------------------
# hot signal

def test_admission_feeds_hot_set(paper_graph):
    config = adaptive_config(hot_threshold=100.0)  # never promote
    with PMBCService(paper_graph, config=config) as service:
        service.query(Side.UPPER, 1, 1, 1)
        service.query_batch([(Side.LOWER.value, 2, 1, 1)] * 3)
        assert service.hot_set.count(Side.UPPER, 1) == pytest.approx(
            1.0, rel=1e-3
        )
        assert service.hot_set.count(Side.LOWER, 2) == pytest.approx(
            3.0, rel=1e-3
        )


# ----------------------------------------------------------------------
# budget enforcement


def test_budget_enforced_with_evictions(medium_planted_graph):
    # A budget of a few KiB forces the builder to evict while the whole
    # layer goes hot; resident bytes must never exceed it.
    config = adaptive_config(
        index_budget_mb=4 / 1024, hot_threshold=2.0
    )
    with PMBCService(medium_planted_graph, config=config) as service:
        budget = config.index_budget_bytes
        for vertex in range(medium_planted_graph.num_upper):
            for __ in range(3):
                service.query(Side.UPPER, vertex, 1, 1)
            assert service.partial_index.total_bytes <= budget
        service.builder.drain(10.0)
        assert service.partial_index.total_bytes <= budget
        assert service.partial_index.evictions_total > 0


# ----------------------------------------------------------------------
# coverage reporting


def test_stats_report_adaptive_coverage(paper_graph):
    with PMBCService(paper_graph, config=adaptive_config()) as service:
        warm_up(service, Side.UPPER, 0)
        coverage = service.stats()["index_coverage"]
        total = paper_graph.num_upper + paper_graph.num_lower
        assert coverage["total_vertices"] == total
        assert coverage["prebuilt"] is None
        adaptive = coverage["adaptive"]
        assert adaptive["vertices"] >= 1
        assert adaptive["fraction"] == pytest.approx(
            adaptive["vertices"] / total
        )
        assert 0 < adaptive["bytes"] <= adaptive["budget_bytes"]


def test_stats_report_prebuilt_coverage(paper_graph):
    index = build_index_star(paper_graph)
    with PMBCService(paper_graph, index=index) as service:
        coverage = service.stats()["index_coverage"]
        prebuilt = coverage["prebuilt"]
        assert prebuilt is not None
        assert prebuilt["vertices"] > 0
        assert 0 < prebuilt["fraction"] <= 1
        assert prebuilt["bytes"] == index.total_size_bytes()
        assert coverage["adaptive"] is None
        assert service.stats()["adaptive"] is None


# ----------------------------------------------------------------------
# invalidation


def test_invalidate_edge_drops_then_rebuilds(paper_graph):
    with PMBCService(paper_graph, config=adaptive_config()) as service:
        warm_up(service, Side.UPPER, 0)
        v = paper_graph.neighbors(Side.UPPER, 0)[0]
        dropped = service.invalidate_edge(0, v)
        assert (Side.UPPER, 0) in dropped
        # Still hot, so the next sweep rebuilds it.
        assert service.builder.drain(10.0)
        assert service.query(Side.UPPER, 0, 1, 1).backend == "partial"


def test_invalidate_edge_noop_without_adaptive(paper_graph):
    with PMBCService(paper_graph) as service:
        assert service.invalidate_edge(0, 0) == []


# ----------------------------------------------------------------------
# persistence and warm restart


def test_warm_restart_from_persisted_hot_set(tmp_path, paper_graph):
    path = str(tmp_path / "hot.pmbc")
    config = adaptive_config(adaptive_persist_path=path)
    with PMBCService(paper_graph, config=config) as service:
        warm_up(service, Side.UPPER, 0)
    with PMBCService(paper_graph, config=config) as restarted:
        assert restarted.stats()["adaptive"]["warm_restored"] >= 1
        result = restarted.query(Side.UPPER, 0, 1, 1)
        assert result.backend == "partial"


def test_restart_with_corrupt_snapshot_starts_cold(tmp_path, paper_graph):
    path = tmp_path / "hot.json"
    path.write_text("{not json")
    config = adaptive_config(adaptive_persist_path=str(path))
    with PMBCService(paper_graph, config=config) as service:
        assert service.stats()["adaptive"]["warm_restored"] == 0
        assert service.query(Side.UPPER, 0, 1, 1).biclique is not None


def test_restart_with_mismatched_graph_starts_cold(
    tmp_path, paper_graph, small_random_graph
):
    path = str(tmp_path / "hot.json")
    config = adaptive_config(adaptive_persist_path=path)
    with PMBCService(paper_graph, config=config) as service:
        warm_up(service, Side.UPPER, 0)
    with PMBCService(small_random_graph, config=config) as other:
        assert other.stats()["adaptive"]["warm_restored"] == 0


# ----------------------------------------------------------------------
# lifecycle (deterministic shutdown)


def test_close_stops_builder_before_executor(paper_graph):
    service = PMBCService(paper_graph, config=adaptive_config()).start()
    warm_up(service, Side.UPPER, 0)
    service.close()
    assert service.builder.closed
    assert not service.builder.running
    assert all(
        t.name != "pmbc-adaptive-builder" for t in threading.enumerate()
    )
    service.close()  # idempotent


def test_close_without_wait_signals_builder(paper_graph):
    service = PMBCService(paper_graph, config=adaptive_config()).start()
    service.close(wait=False)
    assert service.builder.closed


def test_context_manager_cleans_up_builder_thread(paper_graph):
    before = {
        t.name for t in threading.enumerate()
    }
    with PMBCService(paper_graph, config=adaptive_config()) as service:
        service.query(Side.UPPER, 0, 1, 1)
    leaked = {
        t.name
        for t in threading.enumerate()
        if t.name.startswith(("pmbc-adaptive", "pmbc-serve"))
    } - before
    assert not leaked


# ----------------------------------------------------------------------
# config


def test_non_adaptive_service_has_no_adaptive_parts(paper_graph):
    with PMBCService(paper_graph) as service:
        assert service.hot_set is None
        assert service.partial_index is None
        assert service.builder is None
        assert "partial" not in service.backend_names


def test_config_validation():
    for kwargs in (
        {"index_budget_mb": 0},
        {"hot_threshold": 0},
        {"hot_half_life": 0},
        {"build_interval": 0},
        {"persist_interval": 0},
    ):
        with pytest.raises(ValueError):
            ServiceConfig(adaptive=True, **kwargs)


def test_index_budget_bytes_conversion():
    config = ServiceConfig(adaptive=True, index_budget_mb=2.0)
    assert config.index_budget_bytes == 2 * 1024 * 1024
