"""Unit tests for the dependency-free metrics instruments."""

from __future__ import annotations

import threading

import pytest

from repro.serve.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


def test_counter_labels_and_total():
    counter = Counter("requests_total")
    counter.inc(status="ok")
    counter.inc(status="ok")
    counter.inc(3, status="error")
    assert counter.value(status="ok") == 2
    assert counter.value(status="error") == 3
    assert counter.value(status="missing") == 0
    assert counter.total() == 5


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        Counter("c").inc(-1)


def test_counter_exposition_format():
    counter = Counter("reqs", "Requests.")
    counter.inc(status="ok")
    lines = counter.collect()
    assert "# HELP reqs Requests." in lines
    assert "# TYPE reqs counter" in lines
    assert 'reqs{status="ok"} 1' in lines


def test_gauge_set_inc_dec_and_function():
    gauge = Gauge("depth")
    gauge.set(5)
    gauge.inc()
    gauge.dec(2)
    assert gauge.value() == 4
    gauge.set_function(lambda: 42)
    assert gauge.value() == 42
    assert "depth 42" in gauge.collect()


def test_histogram_quantiles_bracket_observations():
    hist = Histogram("lat", buckets=(0.01, 0.1, 1.0))
    for __ in range(90):
        hist.observe(0.005)  # first bucket
    for __ in range(10):
        hist.observe(0.5)  # third bucket
    assert hist.count == 100
    assert hist.quantile(0.5) <= 0.01
    p99 = hist.quantile(0.99)
    assert 0.1 <= p99 <= 1.0
    trio = hist.percentiles()
    assert set(trio) == {"p50", "p95", "p99"}
    assert trio["p50"] <= trio["p95"] <= trio["p99"]


def test_histogram_overflow_and_empty():
    hist = Histogram("lat", buckets=(0.01, 0.1))
    assert hist.quantile(0.5) == 0.0
    hist.observe(5.0)  # beyond the last edge
    assert hist.quantile(0.99) == 0.1  # clamped to the last edge
    assert hist.count == 1
    assert hist.sum == 5.0


def test_histogram_rejects_bad_buckets_and_quantiles():
    with pytest.raises(ValueError):
        Histogram("h", buckets=())
    with pytest.raises(ValueError):
        Histogram("h", buckets=(1.0, 0.5))
    hist = Histogram("h", buckets=(1.0,))
    with pytest.raises(ValueError):
        hist.quantile(0.0)
    with pytest.raises(ValueError):
        hist.quantile(1.5)


def test_histogram_thread_safety():
    hist = Histogram("lat", buckets=(0.5,))
    threads = [
        threading.Thread(
            target=lambda: [hist.observe(0.1) for __ in range(1000)]
        )
        for __ in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert hist.count == 8000


def test_registry_shares_instruments_and_renders():
    registry = MetricsRegistry()
    a = registry.counter("x_total", "X.")
    b = registry.counter("x_total")
    assert a is b
    registry.gauge("g").set(1)
    registry.histogram("h", buckets=(1.0,)).observe(0.2)
    text = registry.render()
    assert "# TYPE x_total counter" in text
    assert "# TYPE g gauge" in text
    assert "# TYPE h histogram" in text
    assert 'h_bucket{le="+Inf"} 1' in text
    assert text.endswith("\n")


def test_registry_rejects_kind_mismatch():
    registry = MetricsRegistry()
    registry.counter("m")
    with pytest.raises(ValueError):
        registry.gauge("m")
