"""End-to-end tests of the HTTP front-end and client.

A real server on an ephemeral port, exercised through
:class:`repro.serve.client.PMBCClient` and raw ``urllib`` calls.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.core import build_index_star, check_personalized_answer
from repro.core.result import Biclique
from repro.graph.bipartite import Side
from repro.serve import (
    InvalidRequestError,
    PMBCClient,
    PMBCServer,
    PMBCService,
    ServiceConfig,
)


@pytest.fixture()
def served(paper_graph):
    """A running server over the paper graph with an index backend."""
    index = build_index_star(paper_graph)
    service = PMBCService(
        paper_graph,
        index=index,
        config=ServiceConfig(num_workers=4, max_queue=32),
    ).start()
    server = PMBCServer(service, port=0).start()
    try:
        yield paper_graph, server, PMBCClient(server.url, timeout=10)
    finally:
        server.shutdown()


def test_healthz(served):
    __, __, client = served
    assert client.healthz()


def test_query_get_returns_verified_biclique(served):
    graph, server, client = served
    payload = client.query_get(
        side="upper", vertex=0, tau_u=1, tau_l=1, verify=1
    )
    result = payload["result"]
    assert result is not None
    assert payload["backend"] == "index"
    assert payload["verified"]["valid"], payload["verified"]["reasons"]
    # Independently re-verify against core.verify.
    upper = frozenset(
        graph.vertex_by_label(Side.UPPER, label) for label in result["upper"]
    )
    lower = frozenset(
        graph.vertex_by_label(Side.LOWER, label) for label in result["lower"]
    )
    check = check_personalized_answer(
        graph, Side.UPPER, 0, 1, 1, Biclique(upper=upper, lower=lower)
    )
    assert check.valid, check.reasons


def test_query_post_with_label(served):
    graph, __, client = served
    label = graph.label(Side.UPPER, 0)
    by_label = client.query(side="upper", label=str(label))
    by_id = client.query(side="upper", vertex=0)
    assert by_label["result"]["edges"] == by_id["result"]["edges"]


def test_query_no_answer_is_null_result(served):
    __, __, client = served
    payload = client.query(side="upper", vertex=0, tau_u=99, tau_l=99)
    assert payload["result"] is None


def test_invalid_requests_map_to_400(served):
    __, __, client = served
    with pytest.raises(InvalidRequestError):
        client.query_get(side="upper", vertex="not-an-int")
    with pytest.raises(InvalidRequestError):
        client.query_get(side="sideways", vertex=0)
    with pytest.raises(InvalidRequestError):
        client.query_get(side="upper", vertex=10_000)
    with pytest.raises(InvalidRequestError):
        client.query_get(side="upper")  # neither vertex nor label
    with pytest.raises(InvalidRequestError):
        client.query(side="upper", label="no-such-label")


def test_unknown_route_is_404(served):
    __, server, __ = served
    request = urllib.request.Request(server.url + "/nope")
    try:
        urllib.request.urlopen(request, timeout=10)
        raise AssertionError("expected HTTP 404")
    except urllib.error.HTTPError as exc:
        assert exc.code == 404
        assert json.loads(exc.read())["error"] == "NotFound"


def test_malformed_post_body_is_400(served):
    __, server, __ = served
    request = urllib.request.Request(
        server.url + "/query",
        data=b"not json",
        headers={"Content-Type": "application/json"},
    )
    try:
        urllib.request.urlopen(request, timeout=10)
        raise AssertionError("expected HTTP 400")
    except urllib.error.HTTPError as exc:
        assert exc.code == 400


def test_metrics_report_nonzero_counts_and_percentiles(served):
    __, __, client = served
    for vertex in (0, 1, 2, 0, 1):
        client.query(side="upper", vertex=vertex)
    text = client.metrics()
    assert "# TYPE pmbc_requests_total counter" in text
    assert 'pmbc_requests_total{status="ok"} 5' in text
    assert "# TYPE pmbc_request_latency_seconds histogram" in text
    assert "pmbc_request_latency_seconds_count 5" in text
    stats = client.stats()
    assert stats["requests"]["ok"] == 5
    latency = stats["latency_seconds"]
    assert latency["count"] == 5
    assert latency["p50"] > 0
    assert latency["p50"] <= latency["p95"] <= latency["p99"]
    assert stats["healthy"]
    assert stats["backends"] == ["index", "engine", "online"]


def test_stats_exposes_engine_cache(served):
    __, __, client = served
    client.query(side="upper", vertex=3)
    cache = client.stats()["engine_cache"]
    assert cache["capacity"] > 0
    assert set(cache) >= {"hits", "misses", "evictions", "hit_rate"}


def test_shutdown_closes_service(paper_graph):
    service = PMBCService(paper_graph, config=ServiceConfig(num_workers=2))
    service.start()
    server = PMBCServer(service, port=0).start()
    client = PMBCClient(server.url, timeout=10)
    assert client.healthz()
    server.shutdown()
    assert service.closed


def test_shutdown_joins_acceptor_before_service_and_leaks_no_threads(
    paper_graph,
):
    """Regression: the acceptor thread must be joined before the
    service (and its executor) closes — the old order let an in-flight
    handler race a closing service, and could leave the acceptor
    thread alive after ``shutdown()`` returned.
    """
    import threading

    service = PMBCService(paper_graph, config=ServiceConfig(num_workers=2))
    service.start()
    server = PMBCServer(service, port=0).start()
    client = PMBCClient(server.url, timeout=10)
    assert client.query(side="upper", vertex=0)["result"] is not None
    server.shutdown()
    assert service.closed
    leaked = [
        t.name
        for t in threading.enumerate()
        if t.name.startswith(("pmbc-serve", "pmbc-adaptive"))
    ]
    assert not leaked, f"threads alive after shutdown: {leaked}"
    # Shutdown is idempotent.
    server.shutdown()
