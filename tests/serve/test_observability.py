"""Observability through the serving stack: explain, ring, /debug/traces.

Covers the ISSUE acceptance criteria at the service and HTTP layers:
``explain`` attaches a trace summary to responses, every computation
lands in the trace ring, search counters reach ``/metrics``, and
``trace_id`` flows from the request into the recorded trace.
"""

from __future__ import annotations

import pytest

from repro.core import build_index_star
from repro.core.query import QueryRequest
from repro.graph.bipartite import Side
from repro.serve import (
    PMBCClient,
    PMBCServer,
    PMBCService,
    ServiceConfig,
)


@pytest.fixture()
def service(paper_graph):
    config = ServiceConfig(num_workers=2, max_queue=32)
    with PMBCService(paper_graph, config=config) as svc:
        yield svc


@pytest.fixture()
def served(paper_graph):
    index = build_index_star(paper_graph)
    svc = PMBCService(
        paper_graph,
        index=index,
        config=ServiceConfig(num_workers=2, max_queue=32),
    ).start()
    server = PMBCServer(svc, port=0).start()
    try:
        yield PMBCClient(server.url, timeout=10)
    finally:
        server.shutdown()


# ----------------------------------------------------------------------
# service layer


def test_explain_attaches_trace_summary(service):
    result = service.query(Side.UPPER, 0, 2, 2, explain=True)
    assert result.trace is not None
    assert result.trace["counters"]["progressive_rounds"] >= 1
    assert result.trace["meta"]["backend"] == result.backend
    assert result.trace["meta"]["query"]["vertex"] == 0


def test_trace_omitted_without_explain(service):
    result = service.query(Side.UPPER, 0, 2, 2)
    assert result.trace is None


def test_every_computation_lands_in_the_ring(service):
    service.query(Side.UPPER, 0)          # no explain — still recorded
    service.query(Side.LOWER, 1, explain=True)
    assert len(service.traces) == 2
    stats = service.stats()["traces"]
    assert stats["buffered"] == 2
    assert stats["recorded"] == 2
    assert stats["capacity"] == service.config.trace_ring_size


def test_trace_id_flows_from_request_to_ring(service):
    request = QueryRequest(Side.UPPER, 0, 2, 2, trace_id="req-42")
    result = service.query(request, explain=True)
    assert result.trace["trace_id"] == "req-42"
    assert service.traces.find("req-42") is not None


def test_single_flight_followers_share_leader_trace(service):
    import threading

    results = []
    request = QueryRequest(Side.UPPER, 2, 1, 1)

    def ask():
        results.append(service.query(request, explain=True))

    threads = [threading.Thread(target=ask) for __ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    traces = [r.trace for r in results]
    assert all(t is not None for t in traces)
    ids = {t["trace_id"] for t in traces}
    # Deduped callers observe a leader's trace; at most as many
    # distinct computations as callers, typically one.
    assert 1 <= len(ids) <= 4
    assert service.stats()["traces"]["recorded"] == len(ids)


def test_batch_explain_attaches_batch_trace(service):
    requests = [
        QueryRequest(Side.UPPER, 0, 1, 1),
        QueryRequest(Side.UPPER, 1, 2, 2),
    ]
    result = service.query_batch(requests, explain=True)
    assert result.trace is not None
    assert result.trace["meta"]["kind"] == "batch"
    assert result.trace["meta"]["batch_size"] == 2


def test_search_counters_reach_metrics(service):
    service.query(Side.UPPER, 0, 2, 2)
    rendered = service.metrics.render()
    assert "pmbc_search_nodes_total" in rendered
    assert 'pmbc_prune_total{objective="pmbc",rule="' in rendered
    assert "pmbc_twohop_size_bucket" in rendered
    assert "pmbc_traces_total 1" in rendered


def test_ring_capacity_is_configurable(paper_graph):
    config = ServiceConfig(num_workers=1, trace_ring_size=2)
    with PMBCService(paper_graph, config=config) as svc:
        for vertex in range(4):
            svc.query(Side.UPPER, vertex)
        assert len(svc.traces) == 2
        assert svc.stats()["traces"]["recorded"] == 4


def test_bad_ring_size_rejected():
    with pytest.raises(ValueError):
        ServiceConfig(trace_ring_size=0)


def test_process_backend_ships_worker_trace(paper_graph):
    config = ServiceConfig(num_workers=1, execution="process")
    with PMBCService(paper_graph, config=config) as svc:
        result = svc.query(Side.UPPER, 0, 2, 2, explain=True)
    assert result.trace is not None
    # Counters computed inside the pool worker must surface here.
    assert result.trace["counters"]["progressive_rounds"] >= 1
    assert result.trace["counters"]["twohop_extractions"] >= 1


# ----------------------------------------------------------------------
# HTTP layer


def test_http_explain_param_attaches_trace(served):
    payload = served.query(side="upper", vertex=0, tau_u=2, tau_l=2,
                           explain=True)
    trace = payload["trace"]
    assert trace["counters"]["index_lookups"] >= 1
    assert trace["meta"]["backend"] == payload["backend"]


def test_http_omits_trace_by_default(served):
    payload = served.query(side="upper", vertex=0)
    assert "trace" not in payload


def test_http_get_explain_flag(served):
    payload = served.query_get(side="upper", vertex="0", explain="1")
    assert "trace" in payload


def test_http_trace_id_round_trips(served):
    payload = served.query_get(
        side="upper", vertex="0", explain="1", trace_id="http-7"
    )
    assert payload["trace"]["trace_id"] == "http-7"
    lookup = served.debug_traces(trace_id="http-7")
    assert lookup["trace"]["trace_id"] == "http-7"


def test_debug_traces_lists_recent(served):
    for vertex in range(3):
        served.query(side="upper", vertex=vertex)
    listing = served.debug_traces(limit=2)
    assert listing["recorded"] >= 3
    assert len(listing["traces"]) == 2
    # Most recent first.
    assert listing["traces"][0]["meta"]["query"]["vertex"] == 2


def test_debug_traces_unknown_id_is_404(served):
    from repro.serve.client import RemoteServiceError

    with pytest.raises(RemoteServiceError):
        served.debug_traces(trace_id="no-such-trace")


def test_batch_http_explain(served):
    payload = served.query_batch(
        [("upper", 0), ("upper", 1, 2, 2)], explain=True
    )
    assert payload["trace"]["meta"]["kind"] == "batch"
