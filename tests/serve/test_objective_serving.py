"""The objective dimension end to end through the serving stack.

Covers the ISSUE acceptance criteria above the engine: ``POST /query``
with ``"objective": "balanced"`` answers the balanced family, the
index/partial tiers decline non-PMBC objectives with a clean MISS
fall-through, unknown objectives and unknown fields are typed 400s,
single-flight keys include the objective, and ``/stats`` breaks
requests, latency and prune counters down per objective.
"""

from __future__ import annotations

import pytest

from repro.core import build_index_star
from repro.core.query import QueryRequest
from repro.graph.bipartite import Side
from repro.mbb import personalized_balanced_reference
from repro.serve import (
    InvalidRequestError,
    PMBCClient,
    PMBCServer,
    PMBCService,
    ServiceConfig,
)
from repro.serve.server import SCHEMA_VERSION


@pytest.fixture()
def indexed_service(paper_graph):
    index = build_index_star(paper_graph)
    config = ServiceConfig(num_workers=2, max_queue=32)
    with PMBCService(paper_graph, index=index, config=config) as svc:
        yield svc


@pytest.fixture()
def served(paper_graph):
    index = build_index_star(paper_graph)
    svc = PMBCService(
        paper_graph,
        index=index,
        config=ServiceConfig(num_workers=2, max_queue=32),
    ).start()
    server = PMBCServer(svc, port=0).start()
    try:
        yield PMBCClient(server.url, timeout=10)
    finally:
        server.shutdown()


# ----------------------------------------------------------------------
# service layer


def test_balanced_query_falls_through_index_to_engine(
    indexed_service, paper_graph
):
    assert indexed_service.backend_names[0] == "index"
    result = indexed_service.query(
        QueryRequest(Side.UPPER, 0, 2, 2, objective="balanced")
    )
    # The index tier declined (MISS) without counting as a failure.
    assert result.backend != "index"
    assert indexed_service.metrics.get(
        "pmbc_backend_fallbacks_total"
    ).total() == 0
    expected = personalized_balanced_reference(
        paper_graph, Side.UPPER, 0, 2, 2
    )
    assert result.biclique is not None
    assert result.biclique.shape == expected.shape
    k = len(expected.upper)
    assert result.biclique.shape == (k, k)


def test_balanced_miss_does_not_count_adaptive_misses(indexed_service):
    # No partial tier is configured: the index's objective MISS must
    # not touch the adaptive counters (which do not even exist here).
    indexed_service.query(
        QueryRequest(Side.UPPER, 0, objective="balanced")
    )
    assert indexed_service.metrics.get("pmbc_adaptive_misses_total") is None


def test_balanced_batch_falls_through_index(indexed_service):
    requests = [
        QueryRequest(Side.UPPER, 0, 2, 2, objective="balanced"),
        QueryRequest(Side.UPPER, 1, 1, 1, objective="balanced"),
    ]
    result = indexed_service.query_batch(requests)
    assert result.backend != "index"
    assert all(b is not None for b in result.bicliques)
    for biclique in result.bicliques:
        assert len(biclique.upper) == len(biclique.lower)


def test_mixed_batch_annotates_mixed_objective(indexed_service):
    result = indexed_service.query_batch(
        [
            QueryRequest(Side.UPPER, 0, 1, 1),
            QueryRequest(Side.UPPER, 0, 1, 1, objective="balanced"),
        ],
        explain=True,
    )
    assert result.trace["meta"]["objective"] == "mixed"


def test_single_flight_keys_differ_by_objective():
    assert QueryRequest(Side.UPPER, 0, 1, 1).key != QueryRequest(
        Side.UPPER, 0, 1, 1, objective="balanced"
    ).key


def test_partial_tier_declines_balanced(paper_graph):
    config = ServiceConfig(
        num_workers=2,
        adaptive=True,
        index_budget_mb=4.0,
        hot_threshold=3.0,
        build_interval=0.02,
    )
    with PMBCService(paper_graph, config=config) as service:
        assert service.backend_names[0] == "partial"
        # Warm the PMBC hot set for vertex 0 so a tree gets built.
        for __ in range(4):
            service.query(Side.UPPER, 0, 1, 1)
        assert service.builder.drain(10.0)
        warm = service.query(Side.UPPER, 0, 1, 1)
        assert warm.backend == "partial"
        # The same vertex under the balanced objective must decline.
        balanced = service.query(
            QueryRequest(Side.UPPER, 0, 1, 1, objective="balanced")
        )
        assert balanced.backend != "partial"
        # Balanced traffic never feeds the hot-set tracker.
        before = len(service.hot_set)
        for vertex in range(1, 4):
            service.query(
                QueryRequest(Side.LOWER, vertex, objective="balanced")
            )
        assert len(service.hot_set) == before


def test_stats_breaks_down_by_objective(indexed_service):
    indexed_service.query(QueryRequest(Side.UPPER, 0, 2, 2))
    indexed_service.query(
        QueryRequest(Side.UPPER, 0, 2, 2, objective="balanced")
    )
    stats = indexed_service.stats()
    objectives = stats["objectives"]
    assert set(objectives) >= {"pmbc", "balanced"}
    assert objectives["pmbc"]["requests"] == 1
    assert objectives["balanced"]["requests"] == 1
    assert objectives["balanced"]["latency_seconds"]["count"] == 1
    # The balanced computation ran a real search, so its nodes and
    # prunes land on the balanced-labelled series only.
    assert objectives["balanced"]["search_nodes"] > 0
    assert objectives["balanced"]["prunes"]


def test_metrics_render_objective_labels(indexed_service):
    indexed_service.query(
        QueryRequest(Side.UPPER, 0, 2, 2, objective="balanced")
    )
    rendered = indexed_service.metrics.render()
    assert 'pmbc_search_nodes_total{objective="balanced"}' in rendered
    assert 'pmbc_requests_by_objective_total{objective="balanced"}' in rendered
    assert "pmbc_request_latency_balanced_seconds_count 1" in rendered


def test_explain_trace_carries_objective(indexed_service):
    result = indexed_service.query(
        QueryRequest(Side.UPPER, 0, objective="balanced"), explain=True
    )
    assert result.trace["meta"]["query"]["objective"] == "balanced"


# ----------------------------------------------------------------------
# HTTP layer


def test_http_balanced_query_end_to_end(served):
    payload = served.query(
        side="upper", vertex=0, tau_u=2, tau_l=2, objective="balanced"
    )
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["query"]["objective"] == "balanced"
    assert payload["backend"] != "index"
    shape = payload["result"]["shape"]
    assert shape[0] == shape[1] >= 2


def test_http_default_objective_is_pmbc(served):
    payload = served.query(side="upper", vertex=0)
    assert payload["query"]["objective"] == "pmbc"
    assert payload["backend"] == "index"


def test_http_unknown_objective_is_typed_400(served):
    with pytest.raises(InvalidRequestError, match="biplex"):
        served.query(side="upper", vertex=0, objective="biplex")


def test_http_unknown_field_is_typed_400(served):
    with pytest.raises(InvalidRequestError, match="objektive"):
        served.query_get(side="upper", vertex=0, objektive="balanced")


def test_http_batch_unknown_field_is_typed_400(served):
    with pytest.raises(InvalidRequestError, match="queries\\[1\\]"):
        served.query_batch(
            [
                {"side": "upper", "vertex": 0},
                {"side": "upper", "vertex": 1, "objektive": "balanced"},
            ]
        )


def test_http_batch_mixed_objectives(served):
    payload = served.query_batch(
        [
            {"side": "upper", "vertex": 0, "tau_u": 2, "tau_l": 2},
            {
                "side": "upper",
                "vertex": 0,
                "tau_u": 2,
                "tau_l": 2,
                "objective": "balanced",
            },
        ]
    )
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["count"] == 2
    first, second = payload["results"]
    assert "objective" not in first["query"]
    assert second["query"]["objective"] == "balanced"
    shape = second["result"]["shape"]
    assert shape[0] == shape[1]


def test_http_verify_works_for_balanced(served):
    payload = served.query(
        side="upper", vertex=0, objective="balanced", verify=True
    )
    assert payload["verified"]["valid"]


def test_http_stats_exposes_objectives(served):
    served.query(side="upper", vertex=0, objective="balanced")
    stats = served.stats()
    assert stats["objectives"]["balanced"]["requests"] == 1
