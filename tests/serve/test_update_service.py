"""Behavioural tests for the streaming-update surface of the service.

Covers :meth:`PMBCService.update_batch` (net-effect collapse, free
no-ops, vertex growth, bounds identity after churn) and the ``POST
/update`` HTTP endpoint end to end.
"""

from __future__ import annotations

import random

import pytest

from repro.core.online import pmbc_online
from repro.corenum.bounds import compute_bounds
from repro.graph.bipartite import Side
from repro.graph.generators import paper_example_graph, random_bipartite
from repro.serve import (
    InvalidRequestError,
    PMBCClient,
    PMBCServer,
    PMBCService,
)


@pytest.fixture
def service():
    with PMBCService(paper_example_graph()) as svc:
        yield svc


def test_insert_is_visible_to_queries(service):
    before = service.graph
    missing = next(
        (u, v)
        for u in range(before.num_upper)
        for v in range(before.num_lower)
        if not before.has_edge(u, v)
    )
    result = service.update_batch([("insert", *missing)])
    assert result.applied == 1
    assert result.inserts == 1
    assert result.noops == 0
    after = service.graph
    assert after is not before
    assert after.has_edge(*missing)
    expected = pmbc_online(after, Side.UPPER, missing[0], 1, 1)
    got = service.query(Side.UPPER, missing[0], 1, 1).biclique
    assert (got.num_edges if got else None) == (
        expected.num_edges if expected else None
    )


def test_delete_is_visible_to_queries(service):
    u = 0
    v = service.graph.neighbors(Side.UPPER, u)[0]
    result = service.update_batch([("delete", u, v)])
    assert result.applied == 1
    assert result.deletes == 1
    assert not service.graph.has_edge(u, v)


def test_noop_batch_is_free(service):
    before = service.graph
    u = 0
    v = before.neighbors(Side.UPPER, u)[0]
    absent = next(
        w for w in range(before.num_lower) if not before.has_edge(u, w)
    )
    result = service.update_batch(
        [("insert", u, v), ("delete", u, absent)]
    )
    assert result.applied == 0
    assert result.noops == 2
    assert result.trees_repaired == 0
    assert result.cascade == 0
    # No graph swap: the snapshot object is untouched.
    assert service.graph is before


def test_net_effect_collapses_within_batch(service):
    before = service.graph
    u = 0
    absent = next(
        w for w in range(before.num_lower) if not before.has_edge(u, w)
    )
    result = service.update_batch(
        [("insert", u, absent), ("delete", u, absent)]
    )
    assert result.applied == 0
    assert result.noops == 2
    assert service.graph is before


def test_growth_extends_layers(service):
    before = service.graph
    u = before.num_upper + 3
    v = before.num_lower + 1
    result = service.update_batch([("insert", u, v)])
    assert result.applied == 1
    after = service.graph
    assert after.num_upper >= u + 1
    assert after.num_lower >= v + 1
    assert after.has_edge(u, v)
    got = service.query(Side.UPPER, u, 1, 1).biclique
    assert got is not None and got.num_edges >= 1


def test_bounds_match_recompute_after_churn():
    graph = random_bipartite(18, 14, 0.25, seed=3)
    rng = random.Random(11)
    with PMBCService(graph) as svc:
        for __ in range(30):
            ops = []
            for __ in range(4):
                u = rng.randrange(graph.num_upper)
                v = rng.randrange(graph.num_lower)
                ops.append((rng.choice(("insert", "delete")), u, v))
            svc.update_batch(ops)
        exact = compute_bounds(svc.graph)
        live = svc.engine.bounds
        for side in Side:
            assert live.z[side] == exact.z[side]
            assert live.prefix[side] == exact.prefix[side]
            assert live.suffix[side] == exact.suffix[side]


def test_update_metrics_counters(service):
    u = 0
    v = service.graph.neighbors(Side.UPPER, u)[0]
    service.update_batch([("delete", u, v), ("delete", u, v)])
    stats = service.stats()["updates"]
    assert stats["batches"] == 1
    assert stats["deletes"] == 1
    assert stats["noops"] == 1
    assert stats["adjacency"]["patches"] >= 1


def test_invalid_updates_rejected(service):
    with pytest.raises(InvalidRequestError):
        service.update_batch([])
    with pytest.raises(InvalidRequestError):
        service.update_batch([("upsert", 0, 1)])
    with pytest.raises(InvalidRequestError):
        service.update_batch([("insert", -1, 0)])


# ----------------------------------------------------------------------
# HTTP endpoint
# ----------------------------------------------------------------------
@pytest.fixture
def http_client():
    server = PMBCServer(PMBCService(paper_example_graph()).start(), port=0)
    server.start()
    try:
        yield PMBCClient(server.url), server
    finally:
        server.shutdown()


def test_http_update_roundtrip(http_client):
    client, server = http_client
    graph = server.service.graph
    missing = next(
        (u, v)
        for u in range(graph.num_upper)
        for v in range(graph.num_lower)
        if not graph.has_edge(u, v)
    )
    payload = client.update(
        [("insert", *missing), {"action": "delete", "u": 0, "v": 99}]
    )
    assert payload["applied"] == 1
    assert payload["noops"] == 1
    assert payload["inserts"] == 1
    assert server.service.graph.has_edge(*missing)
    answer = client.query("upper", missing[0], tau_u=1, tau_l=1)
    assert answer["result"] is not None


def test_http_update_rejects_malformed(http_client):
    client, __ = http_client
    with pytest.raises(InvalidRequestError):
        client.update([("upsert", 0, 1)])
    with pytest.raises(InvalidRequestError):
        client.update([{"action": "insert", "u": 0}])
    with pytest.raises(InvalidRequestError):
        client.update([])
