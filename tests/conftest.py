"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.graph.generators import (
    paper_example_graph,
    planted_biclique_graph,
    power_law_bipartite,
    random_bipartite,
)


@pytest.fixture
def paper_graph():
    """The Figure 2 running-example graph (reconstructed)."""
    return paper_example_graph()


@pytest.fixture
def small_random_graph():
    """A small dense-ish random bipartite graph for oracle comparisons."""
    return random_bipartite(8, 8, 0.4, seed=42)


@pytest.fixture
def medium_planted_graph():
    """A medium graph with planted bicliques for integration tests."""
    return planted_biclique_graph(
        60, 50, 220, planted=((6, 5), (5, 4), (4, 6)), seed=7
    )


@pytest.fixture
def skewed_graph():
    """A heavy-tailed graph exercising degree-skew code paths."""
    return power_law_bipartite(80, 60, 300, exponent=1.4, seed=11)
