"""Failure-injection and robustness tests."""

from __future__ import annotations

import json

import pytest

from repro import Side, build_index_star, pmbc_index_query, pmbc_online
from repro.core.index import PMBCIndex
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import paper_example_graph
from repro.graph.io import read_konect


def test_corrupted_index_file_raises(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    with pytest.raises(json.JSONDecodeError):
        PMBCIndex.load(path)


def test_index_file_missing_fields(tmp_path):
    path = tmp_path / "partial.json"
    path.write_text(json.dumps({"num_upper": 1}))
    with pytest.raises(KeyError):
        PMBCIndex.load(path)


def test_missing_graph_file():
    with pytest.raises(FileNotFoundError):
        read_konect("/nonexistent/out.graph")


def test_query_against_wrong_sized_index(paper_graph):
    """Loading an index for graph A and querying vertex ids of a larger
    graph B fails loudly instead of returning wrong data."""
    index = build_index_star(paper_graph)
    with pytest.raises(ValueError):
        pmbc_index_query(index, Side.UPPER, paper_graph.num_upper + 5, 1, 1)


def test_graph_with_isolated_vertex_still_indexable():
    """Vertices with degree 0 (the paper removes them; we tolerate them)
    get empty trees and every query on them returns None."""
    graph = BipartiteGraph([[0], []], num_lower=1)
    index = build_index_star(graph)
    assert pmbc_index_query(index, Side.UPPER, 1, 1, 1) is None
    assert pmbc_index_query(index, Side.UPPER, 0, 1, 1) is not None


def test_single_edge_graph():
    graph = BipartiteGraph([[0]], num_lower=1)
    index = build_index_star(graph)
    result = pmbc_index_query(index, Side.UPPER, 0, 1, 1)
    assert result is not None
    assert result.shape == (1, 1)
    assert pmbc_index_query(index, Side.UPPER, 0, 2, 1) is None


def test_duplicate_edges_do_not_inflate_results():
    graph = BipartiteGraph([[0, 0, 0], [0]], num_lower=1)
    result = pmbc_online(graph, Side.UPPER, 0, 1, 1)
    assert result.shape == (2, 1)


def test_extreme_constraints_do_not_crash(paper_graph):
    assert pmbc_online(paper_graph, Side.UPPER, 0, 10**6, 1) is None
    assert pmbc_online(paper_graph, Side.UPPER, 0, 1, 10**6) is None
    index = build_index_star(paper_graph)
    assert pmbc_index_query(index, Side.UPPER, 0, 10**6, 10**6) is None


def test_interrupted_parallel_build_propagates_errors(monkeypatch):
    """A worker crash surfaces to the caller instead of hanging."""
    from repro.core import parallel as parallel_module
    from repro.exec import tasks as tasks_module

    graph = paper_example_graph()

    def boom(*args, **kwargs):
        raise RuntimeError("injected fault")

    monkeypatch.setattr(tasks_module, "build_search_tree", boom)
    with pytest.raises(RuntimeError, match="injected fault"):
        parallel_module.build_index_parallel(graph, num_threads=2)
