"""Every intra-repo link in the documentation must resolve.

Scans ``README.md`` and ``docs/*.md`` for markdown links and checks
that relative targets exist in the working tree (anchors are stripped;
external ``http(s)``/``mailto`` links are skipped).  This is the CI
docs gate: a renamed file or a typo'd path fails here instead of
shipping a dead link.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — good enough for our docs; skips ``![image]``
#: alt-text brackets by matching the link part only.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

DOC_PAGES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")]
)


def intra_repo_links(page: Path) -> list[str]:
    links = []
    for target in LINK.findall(page.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        links.append(target)
    return links


@pytest.mark.parametrize("page", DOC_PAGES, ids=lambda p: p.name)
def test_intra_repo_links_resolve(page):
    broken = []
    for target in intra_repo_links(page):
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = (page.parent / path).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{page.name}: broken links {broken}"


def test_docs_pages_exist():
    """The pages the PR contract names must all be present."""
    names = {page.name for page in DOC_PAGES}
    assert {
        "README.md",
        "architecture.md",
        "serving.md",
        "sharding.md",
        "benchmarks.md",
    } <= names
