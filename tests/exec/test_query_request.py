"""QueryRequest is accepted uniformly across every query surface."""

from __future__ import annotations

import pytest

from repro.core import (
    PMBCQueryEngine,
    build_index_star,
    pmbc_online,
    pmbc_online_star,
)
from repro.core.query import QueryRequest, as_request, pmbc_index_query
from repro.graph.bipartite import Side
from repro.serve import PMBCService, ServiceConfig


def test_query_request_normalizes_side_strings():
    request = QueryRequest("upper", 3, 2, 1)
    assert request.side is Side.UPPER
    assert request.key == (Side.UPPER, 3, 2, 1, "pmbc")
    assert request.to_json() == {
        "side": "upper", "vertex": 3, "tau_u": 2, "tau_l": 1,
    }


def test_query_request_rejects_bad_fields():
    with pytest.raises(TypeError):
        QueryRequest(42, 0)
    with pytest.raises(TypeError):
        QueryRequest(Side.UPPER, "zero")
    with pytest.raises(TypeError):
        QueryRequest(Side.UPPER, 0, tau_u=True)
    with pytest.raises(ValueError):
        QueryRequest("sideways", 0)


def test_query_request_of_accepts_batch_shapes():
    reference = QueryRequest(Side.LOWER, 5, 2, 3)
    assert QueryRequest.of(reference) is reference
    assert QueryRequest.of(("lower", 5, 2, 3)) == reference
    assert QueryRequest.of(["lower", 5, 2, 3]) == reference
    assert (
        QueryRequest.of(
            {"side": "lower", "vertex": 5, "tau_u": 2, "tau_l": 3}
        )
        == reference
    )
    assert QueryRequest.of(("upper", 1)) == QueryRequest(Side.UPPER, 1)
    with pytest.raises(TypeError):
        QueryRequest.of("upper")


def test_as_request_rejects_mixed_forms():
    request = QueryRequest(Side.UPPER, 0)
    assert as_request(request) is request
    with pytest.raises(TypeError):
        as_request(request, 3)
    with pytest.raises(TypeError):
        as_request(Side.UPPER)  # missing vertex


def test_all_surfaces_accept_a_query_request(paper_graph):
    request = QueryRequest(Side.UPPER, 0, 2, 2)
    positional = (Side.UPPER, 0, 2, 2)

    expected = pmbc_online_star(paper_graph, *positional)
    assert (
        pmbc_online(paper_graph, request).num_edges == expected.num_edges
    )
    assert (
        pmbc_online_star(paper_graph, request).num_edges
        == expected.num_edges
    )

    engine = PMBCQueryEngine(paper_graph)
    assert engine.query(request).num_edges == expected.num_edges

    index = build_index_star(paper_graph)
    assert (
        pmbc_index_query(index, request).num_edges == expected.num_edges
    )

    config = ServiceConfig(num_workers=1)
    with PMBCService(paper_graph, index=index, config=config) as service:
        via_service = service.query(request)
        assert via_service.biclique.num_edges == expected.num_edges
        via_future = service.submit(request).result(timeout=10)
        assert via_future.biclique.num_edges == expected.num_edges


def test_service_rejects_request_plus_positional(paper_graph):
    from repro.serve import InvalidRequestError

    with PMBCService(
        paper_graph, config=ServiceConfig(num_workers=1)
    ) as service:
        with pytest.raises(InvalidRequestError):
            service.query(QueryRequest(Side.UPPER, 0), 3)
