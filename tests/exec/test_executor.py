"""Tests for the repro.exec execution substrate.

Covers the ISSUE's required scenarios: the process backend answers
byte-identically to sequential execution on a zoo dataset, backend
creation degrades gracefully to threads on platforms without a usable
start method, and the executor lifecycle/metrics contract holds for
both backends.
"""

from __future__ import annotations

import pytest

from repro.core.engine import PMBCQueryEngine
from repro.core.query import QueryRequest
from repro.datasets.zoo import load_dataset
from repro.exec import (
    EXECUTION_KINDS,
    ExecutorClosedError,
    ProcessBackend,
    ThreadBackend,
    create_executor,
    process_start_method,
)
from repro.exec import executor as executor_module
from repro.graph.bipartite import Side
from repro.serve.metrics import MetricsRegistry


def _workload(graph, stride=7):
    requests = []
    for side in Side:
        for vertex in range(0, graph.num_vertices_on(side), stride):
            for tau_u, tau_l in ((1, 1), (2, 2)):
                requests.append(QueryRequest(side, vertex, tau_u, tau_l))
    return requests


def _edges(answer):
    return None if answer is None else answer.num_edges


@pytest.fixture(scope="module")
def zoo_graph():
    return load_dataset("Writers")


# ----------------------------------------------------------------------
# equivalence


@pytest.mark.parametrize("kind", EXECUTION_KINDS)
def test_backend_matches_sequential_engine_on_zoo(zoo_graph, kind):
    engine = PMBCQueryEngine(zoo_graph)
    requests = _workload(zoo_graph)
    expected = [engine.query(request) for request in requests]
    with create_executor(kind, zoo_graph, num_workers=2) as executor:
        assert executor.kind == kind  # no silent fallback on this host
        answers = [executor.run("query", request) for request in requests]
    # Maxima are unique per (vertex, taus) objective value; compare by
    # edge count, the paper's objective.
    assert [_edges(a) for a in answers] == [_edges(e) for e in expected]


@pytest.mark.parametrize("kind", EXECUTION_KINDS)
def test_batch_task_matches_per_item_runs(zoo_graph, kind):
    requests = _workload(zoo_graph, stride=11)
    with create_executor(kind, zoo_graph, num_workers=2) as executor:
        singles = [executor.run("query", request) for request in requests]
        batch = executor.run("query_batch", requests)
    assert [_edges(a) for a in batch] == [_edges(s) for s in singles]


def test_executor_map_preserves_item_order(paper_graph):
    requests = _workload(paper_graph, stride=1)
    with create_executor("process", paper_graph, num_workers=2) as executor:
        mapped = executor.map("query", requests)
        singles = [executor.run("query", request) for request in requests]
    assert [_edges(a) for a in mapped] == [_edges(s) for s in singles]


# ----------------------------------------------------------------------
# graceful degradation


def test_thread_fallback_when_no_start_method(paper_graph, monkeypatch):
    monkeypatch.setattr(
        executor_module, "_available_start_methods", lambda: []
    )
    assert process_start_method() is None
    with pytest.warns(RuntimeWarning, match="falling back"):
        executor = create_executor("process", paper_graph, num_workers=2)
    try:
        assert executor.kind == "thread"
        answer = executor.run("query", QueryRequest(Side.UPPER, 0))
        assert answer is not None
    finally:
        executor.close()


def test_fallback_warning_names_backend_and_start_method(
    paper_graph, monkeypatch
):
    """The degradation warning must say what was requested and why.

    Regression test: the message used to read "process execution
    unavailable" without naming the requested backend or the platform's
    start method, which made fallback reports ambiguous in logs.
    """
    monkeypatch.setattr(
        executor_module, "_available_start_methods", lambda: []
    )
    with pytest.warns(RuntimeWarning) as captured:
        executor = create_executor("process", paper_graph, num_workers=2)
    executor.close()
    message = str(captured[0].message)
    assert "'process'" in message
    assert "start method: none" in message
    assert "falling back to the thread backend" in message


def test_fallback_warning_reports_requested_start_method(
    paper_graph, monkeypatch
):
    def _broken_pool(self, *args, **kwargs):
        raise OSError("no /dev/shm semaphores")

    monkeypatch.setattr(
        executor_module.ProcessBackend, "__init__", _broken_pool
    )
    with pytest.warns(RuntimeWarning) as captured:
        executor = create_executor(
            "process", paper_graph, num_workers=2, start_method="spawn"
        )
    executor.close()
    message = str(captured[0].message)
    assert "start method: spawn" in message
    assert "no /dev/shm semaphores" in message


def test_process_backend_raises_without_start_method(
    paper_graph, monkeypatch
):
    monkeypatch.setattr(
        executor_module, "_available_start_methods", lambda: []
    )
    with pytest.raises(RuntimeError, match="start method"):
        ProcessBackend(paper_graph)


def test_unknown_kind_rejected(paper_graph):
    with pytest.raises(ValueError, match="execution"):
        create_executor("gpu", paper_graph)


# ----------------------------------------------------------------------
# lifecycle + metrics


def test_closed_executor_rejects_work(paper_graph):
    executor = ThreadBackend(paper_graph, num_workers=1)
    executor.close()
    with pytest.raises(ExecutorClosedError):
        executor.run("query", QueryRequest(Side.UPPER, 0))


def test_unknown_task_rejected(paper_graph):
    with ThreadBackend(paper_graph, num_workers=1) as executor:
        with pytest.raises(KeyError):
            executor.run("no-such-task", QueryRequest(Side.UPPER, 0))


@pytest.mark.parametrize("kind", EXECUTION_KINDS)
def test_exec_metrics_are_recorded(paper_graph, kind):
    metrics = MetricsRegistry()
    requests = _workload(paper_graph, stride=2)
    with create_executor(
        kind, paper_graph, num_workers=2, metrics=metrics
    ) as executor:
        executor.map("query", requests)
        rendered = metrics.render()
    assert "pmbc_exec_tasks_total" in rendered
    assert "pmbc_exec_queue_depth" in rendered
    assert f"pmbc_exec_task_seconds_{kind}" in rendered
    counter = metrics.counter(
        "pmbc_exec_tasks_total", "Executor work items by backend and task."
    )
    assert counter.value(backend=kind, task="query") == len(requests)


# ----------------------------------------------------------------------
# packed-adjacency reuse (bitset kernel)


def test_process_worker_packs_once_per_extraction(paper_graph):
    """Workers must reuse the memoized packed view across tasks.

    Regression test: repeated queries on the same vertex used to be
    able to re-pack adjacency per task if the worker's engine (and its
    two-hop LRU) was rebuilt between tasks.  With the engine installed
    by the pool initializer, the per-worker pack count grows with
    distinct extractions only — never with the number of tasks.
    """
    request = QueryRequest(Side.UPPER, 0, 1, 1)
    other = QueryRequest(Side.LOWER, 1, 1, 1)
    with create_executor(
        "process", paper_graph, num_workers=1, kernel="bitset"
    ) as executor:
        assert executor.kind == "process"
        baseline = executor.run("pack_count", None)
        for _ in range(5):
            executor.run("query", request)
        assert executor.run("pack_count", None) == baseline + 1
        for _ in range(3):
            executor.run("query", other)
        assert executor.run("pack_count", None) == baseline + 2


def test_thread_worker_packs_once_per_extraction(paper_graph):
    """The shared-engine thread backend reuses packed views the same way."""
    request = QueryRequest(Side.UPPER, 0, 1, 1)
    with create_executor(
        "thread", paper_graph, num_workers=2, kernel="bitset"
    ) as executor:
        baseline = executor.run("pack_count", None)
        for _ in range(5):
            executor.run("query", request)
        assert executor.run("pack_count", None) == baseline + 1
