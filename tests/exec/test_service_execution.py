"""PMBCService on the process backend + the batch query path.

The serving semantics PR 1 established (deadlines, queue-full
admission control, degradation) must hold unchanged when the
CPU-bound search runs on a process pool, and the batch path must
answer exactly like per-request queries while extracting each distinct
two-hop subgraph at most once.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.engine import PMBCQueryEngine
from repro.core.query import QueryRequest
from repro.graph.bipartite import Side
from repro.serve import (
    BatchResult,
    DeadlineExceededError,
    InvalidRequestError,
    PMBCService,
    QueueFullError,
    ServiceConfig,
)


def _edges(answer):
    return None if answer is None else answer.num_edges


def _requests(graph, stride=3):
    requests = []
    for side in Side:
        for vertex in range(0, graph.num_vertices_on(side), stride):
            for taus in ((1, 1), (2, 2)):
                requests.append(QueryRequest(side, vertex, *taus))
    return requests


# ----------------------------------------------------------------------
# process execution through the service


def test_process_service_matches_thread_service(medium_planted_graph):
    graph = medium_planted_graph
    requests = _requests(graph, stride=5)
    with PMBCService(
        graph, config=ServiceConfig(num_workers=2)
    ) as thread_service:
        expected = [
            _edges(thread_service.query(r).biclique) for r in requests
        ]
    config = ServiceConfig(num_workers=2, execution="process")
    with PMBCService(graph, config=config) as process_service:
        assert process_service.backend_names == (
            "process", "engine", "online",
        )
        answers = [
            process_service.query(r) for r in requests
        ]
    assert [_edges(a.biclique) for a in answers] == expected
    assert all(a.backend == "process" for a in answers)


def test_process_service_deadline_and_queue_semantics(paper_graph):
    """Deadline/queue-full behaviour is execution-backend independent."""
    release = threading.Event()

    class _SlowBackend:
        name = "slow"

        def query(self, request):
            release.wait(10)
            return None

    config = ServiceConfig(
        num_workers=1, max_queue=2, execution="process"
    )
    with PMBCService(paper_graph, config=config) as service:
        service._backends = [_SlowBackend()]
        with pytest.raises(DeadlineExceededError):
            service.query(Side.UPPER, 0, deadline=0.1)
        futures = [service.submit(Side.UPPER, v) for v in (1, 2)]
        with pytest.raises(QueueFullError):
            for v in range(3, 10):
                service.submit(Side.UPPER, v)
        release.set()
        for future in futures:
            future.result(timeout=10)
        with pytest.raises(InvalidRequestError):
            service.query("upper", 0)  # raw surface still wants a Side


# ----------------------------------------------------------------------
# batch path


@pytest.mark.parametrize("execution", ["thread", "process"])
def test_query_batch_equals_per_query_loop(paper_graph, execution):
    requests = _requests(paper_graph, stride=1)
    config = ServiceConfig(num_workers=2, execution=execution)
    with PMBCService(paper_graph, config=config) as service:
        singles = [
            _edges(service.query(r).biclique) for r in requests
        ]
        batch = service.query_batch(requests)
        assert isinstance(batch, BatchResult)
        assert len(batch) == len(requests)
        assert [_edges(b) for b in batch.bicliques] == singles
        stats = service.stats()
        assert stats["batch"]["count"] == 1
        assert stats["batch"]["mean_size"] == len(requests)


def test_query_batch_accepts_dicts_and_tuples(paper_graph):
    with PMBCService(
        paper_graph, config=ServiceConfig(num_workers=1)
    ) as service:
        batch = service.query_batch(
            [
                {"side": "upper", "vertex": 0},
                ("lower", 0, 2, 2),
                QueryRequest(Side.UPPER, 1),
            ]
        )
        assert len(batch) == 3


def test_query_batch_validates_before_admission(paper_graph):
    with PMBCService(
        paper_graph, config=ServiceConfig(num_workers=1)
    ) as service:
        with pytest.raises(InvalidRequestError):
            service.query_batch([])
        with pytest.raises(InvalidRequestError):
            service.query_batch([("upper", 10_000)])
        with pytest.raises(InvalidRequestError):
            service.query_batch(["nonsense"])
        assert service.stats()["queue"]["depth"] == 0


def test_query_batch_deadline_covers_whole_batch(paper_graph):
    release = threading.Event()

    class _SlowBatchBackend:
        name = "slow"

        def query_batch(self, requests):
            release.wait(10)
            return [None] * len(requests)

    with PMBCService(
        paper_graph, config=ServiceConfig(num_workers=1)
    ) as service:
        service._backends = [_SlowBatchBackend()]
        start = time.monotonic()
        with pytest.raises(DeadlineExceededError):
            service.query_batch(
                [("upper", 0), ("upper", 1)], deadline=0.1
            )
        assert time.monotonic() - start < 5
        release.set()


def test_batch_groups_by_vertex_fewer_extractions(medium_planted_graph):
    """A Zipf-skewed stream: batch grouping beats per-query LRU churn.

    With a cache smaller than the working set, a per-query loop misses
    whenever the LRU evicted the vertex between repeats; the grouped
    batch extracts each distinct vertex exactly once.
    """
    graph = medium_planted_graph
    from repro.bench.workloads import zipf_queries

    requests = [
        QueryRequest(side, vertex)
        for side, vertex in zipf_queries(
            graph, num_queries=120, exponent=1.1, seed=5
        )
    ]
    distinct = len({(r.side, r.vertex) for r in requests})

    loop_engine = PMBCQueryEngine(graph, cache_size=4)
    for request in requests:
        loop_engine.query(request)
    loop_misses = loop_engine.cache_stats().misses

    batch_engine = PMBCQueryEngine(graph, cache_size=4)
    batch_engine.query_batch(requests)
    batch_misses = batch_engine.cache_stats().misses

    assert batch_misses <= distinct
    assert batch_misses < loop_misses
