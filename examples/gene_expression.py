#!/usr/bin/env python3
"""Bicluster discovery in a gene–condition expression matrix.

The paper's third application domain: in gene-expression analysis, a
binary gene×condition matrix (gene g responds under condition c) is a
bipartite graph, and a biclique is a *bicluster* — a set of genes that
co-respond across a set of conditions.  Given one gene of interest
(say, a known disease marker), its personalized maximum biclique is the
largest co-expression module containing it.

This example builds a synthetic expression matrix with three planted,
partially overlapping modules, then recovers the module of a marker
gene and compares against maximal-biclique enumeration (the classical
bicluster-enumeration approach, which returns hundreds of candidates
instead of one).

Run:  python examples/gene_expression.py
"""

from __future__ import annotations

import random

from repro import Side, from_biadjacency, pmbc_online_star
from repro.mbe import maximal_biclique_count

NUM_GENES = 60
NUM_CONDITIONS = 24

# (gene range, condition range) of the planted modules; they overlap on
# purpose so the personalized answer depends on the query gene.
MODULES = [
    (range(0, 10), range(0, 6)),
    (range(6, 14), range(4, 12)),
    (range(40, 46), range(15, 23)),
]


def synthesize_matrix(seed: int = 11):
    rng = random.Random(seed)
    matrix = [
        [1 if rng.random() < 0.05 else 0 for __ in range(NUM_CONDITIONS)]
        for __ in range(NUM_GENES)
    ]
    for genes, conditions in MODULES:
        for g in genes:
            for c in conditions:
                matrix[g][c] = 1
    return matrix


def main() -> None:
    matrix = synthesize_matrix()
    graph = from_biadjacency(matrix)
    print(f"gene–condition graph: {graph}")

    total = maximal_biclique_count(graph)
    print(f"maximal bicliques (all candidate biclusters): {total}")

    for marker in (2, 8, 42):
        module = pmbc_online_star(
            graph, Side.UPPER, marker, tau_u=3, tau_l=3
        )
        genes = sorted(module.upper)
        conditions = sorted(module.lower)
        print(
            f"\nmarker gene g{marker}: module of {len(genes)} genes x "
            f"{len(conditions)} conditions ({module.num_edges} cells)"
        )
        print(f"  genes     : {['g%d' % g for g in genes]}")
        print(f"  conditions: {['c%d' % c for c in conditions]}")

    # Gene g8 sits in the overlap of modules 1 and 2; the τ parameters
    # pick which module is reported: unconstrained the denser module 2
    # wins (8x8 = 64 cells), but demanding ≥10 genes forces module 1.
    for tau_g, tau_c in ((2, 2), (10, 2)):
        module = pmbc_online_star(
            graph, Side.UPPER, 8, tau_u=tau_g, tau_l=tau_c
        )
        print(
            f"\ng8 with ≥{tau_g} genes, ≥{tau_c} conditions -> "
            f"{len(module.upper)} genes x {len(module.lower)} conditions"
        )


if __name__ == "__main__":
    main()
