#!/usr/bin/env python3
"""Quickstart: personalized maximum biclique search in five minutes.

Builds the paper's running-example graph (Figure 2), answers the
example queries with the online algorithm, then builds the PMBC-Index
and answers the same queries from it.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Side, build_index_star, pmbc_index_query, pmbc_online
from repro.graph.generators import paper_example_graph


def main() -> None:
    graph = paper_example_graph()
    print(f"graph: {graph}")

    def uid(name: str) -> int:
        return graph.vertex_by_label(Side.UPPER, name)

    # --- Online queries (PMBC-OL): no precomputation needed. -----------
    print("\nonline queries (PMBC-OL):")
    for name, tau_u, tau_l in (("u1", 1, 1), ("u1", 5, 1), ("u7", 1, 1)):
        result = pmbc_online(graph, Side.UPPER, uid(name), tau_u, tau_l)
        upper, lower = result.with_labels(graph)
        print(
            f"  C^{name}_{{{tau_u},{tau_l}}} = {sorted(upper)} x "
            f"{sorted(lower)}  ({result.num_edges} edges)"
        )

    # --- Index-based queries (PMBC-IQ): build once, query in O(deg+|C|).
    index = build_index_star(graph)
    stats = index.stats()
    print(
        f"\nPMBC-Index: {stats['num_tree_nodes']} tree nodes, "
        f"{stats['num_bicliques']} bicliques, "
        f"{stats['total_size_bytes']} bytes"
    )
    print("index queries (PMBC-IQ):")
    for name, tau_u, tau_l in (("u1", 2, 4), ("u1", 1, 4), ("u5", 1, 1)):
        result = pmbc_index_query(index, Side.UPPER, uid(name), tau_u, tau_l)
        if result is None:
            print(f"  C^{name}_{{{tau_u},{tau_l}}} = (none)")
            continue
        upper, lower = result.with_labels(graph)
        print(
            f"  C^{name}_{{{tau_u},{tau_l}}} = {sorted(upper)} x "
            f"{sorted(lower)}  ({result.num_edges} edges)"
        )

    # Queries whose constraints cannot be met return None.
    impossible = pmbc_index_query(index, Side.UPPER, uid("u1"), 6, 1)
    print(f"\nC^u1_{{6,1}} -> {impossible} (u1 shares products with only 4 peers)")


if __name__ == "__main__":
    main()
