#!/usr/bin/env python3
"""Fraud-ring detection on a user–product network (the paper's intro use case).

Scenario: an e-commerce platform models interactions as a bipartite
user–product graph.  Fraud rings — users paid to promote the same set
of products — show up as dense bicliques.  When one *seed* account is
flagged (by user reports or rate monitoring), the investigator asks:
"who is in this account's tightest group, and on which products?"
That is exactly a personalized maximum biclique query.

This example synthesizes a marketplace with organic traffic plus two
planted fraud rings, flags one member of each ring as a seed, and shows
that the personalized maximum biclique of each seed recovers its ring —
while the *global* maximum biclique (what non-personalized search
returns) only ever finds one of them.

Run:  python examples/fraud_detection.py
"""

from __future__ import annotations

import random

from repro import Side, build_index_star, from_edges, pmbc_index_query
from repro.mbc import maximum_biclique


def synthesize_marketplace(seed: int = 7):
    """Organic user-product edges plus two planted fraud rings."""
    rng = random.Random(seed)
    edges = []
    users = [f"user{i:03d}" for i in range(120)]
    products = [f"prod{i:03d}" for i in range(80)]
    # Organic traffic: each user rates a few random products.
    for user in users:
        for product in rng.sample(products, rng.randint(1, 4)):
            edges.append((user, product))
    # Fraud ring A: 6 accounts boosting 5 products.
    ring_a_users = [f"fraudA_{i}" for i in range(6)]
    ring_a_products = rng.sample(products, 5)
    edges += [(u, p) for u in ring_a_users for p in ring_a_products]
    # Fraud ring B: 4 accounts boosting 7 products.
    ring_b_users = [f"fraudB_{i}" for i in range(4)]
    ring_b_products = rng.sample(products, 7)
    edges += [(u, p) for u in ring_b_users for p in ring_b_products]
    # Camouflage: ring members also generate organic-looking edges.
    for user in ring_a_users + ring_b_users:
        for product in rng.sample(products, 2):
            edges.append((user, product))
    return from_edges(edges), ring_a_users, ring_b_users


def main() -> None:
    graph, ring_a, ring_b = synthesize_marketplace()
    print(f"marketplace graph: {graph}")

    index = build_index_star(graph)
    print(f"PMBC-Index built: {index.num_bicliques} bicliques stored\n")

    # Global maximum biclique search sees only the single largest group.
    top = maximum_biclique(graph, 2, 2)
    top_users = {graph.label(Side.UPPER, u) for u in top.upper}
    print(f"global maximum biclique flags only: {sorted(top_users)}\n")

    # Personalized search, seeded with one known-bad account per ring.
    for seed_account, ring in ((ring_a[0], ring_a), (ring_b[0], ring_b)):
        q = graph.vertex_by_label(Side.UPPER, seed_account)
        # tau_u=3: at least three coordinated accounts; tau_l=3: at
        # least three boosted products — tunable investigation policy.
        result = pmbc_index_query(index, Side.UPPER, q, tau_u=3, tau_l=3)
        users, products = result.with_labels(graph)
        suspects = sorted(users - {seed_account})
        recovered = set(ring) <= users
        print(f"seed {seed_account}:")
        print(f"  suspicious group : {suspects}")
        print(f"  boosted products : {sorted(products)}")
        print(f"  full ring recovered: {recovered}\n")


if __name__ == "__main__":
    main()
