#!/usr/bin/env python3
"""Streaming fraud monitoring over the live update API.

The paper closes by naming dynamic graphs as future work; this example
exercises the repository's streaming stack end to end in the paper's
own anomaly-detection setting: a :class:`repro.serve.PMBCServer` hosts
a user-product graph, transactions arrive as ``POST /update`` batches
through :class:`repro.serve.PMBCClient`, each batch is applied by the
incremental core-bound maintenance (no rebuild), and a watch rule
re-queries the flagged seed account after every batch — raising an
alert the moment the seed's group crosses a size threshold.

Run:  python examples/streaming_monitor.py
"""

from __future__ import annotations

import random

from repro import Side, from_edges
from repro.serve import PMBCClient, PMBCServer, PMBCService

ALERT_GROUP = 4  # alert when >= 4 coordinated accounts ...
ALERT_ITEMS = 3  # ... push >= 3 common products
BATCH = 2  # transactions per /update call (the freshness SLA)


def bootstrap_graph(seed: int = 17):
    """Organic history: users each touch a few products."""
    rng = random.Random(seed)
    users = [f"user{i:02d}" for i in range(40)]
    products = [f"prod{i:02d}" for i in range(25)]
    edges = []
    for user in users:
        for product in rng.sample(products, rng.randint(1, 3)):
            edges.append((user, product))
    # The seed account exists but looks harmless so far.
    edges.append(("seed_account", products[0]))
    return from_edges(edges)


def ring_transactions(seed: int = 23):
    """A fraud ring assembling around the seed account, one edge at a time."""
    rng = random.Random(seed)
    ring_users = ["seed_account", "mule_a", "mule_b", "mule_c"]
    ring_products = ["prod03", "prod11", "prod17"]
    stream = [(u, p) for u in ring_users for p in ring_products]
    rng.shuffle(stream)
    return stream


def main() -> None:
    graph = bootstrap_graph()
    print(f"bootstrap graph: {graph}")
    seed_id = graph.vertex_by_label(Side.UPPER, "seed_account")

    # Label bookkeeping: updates are id-based, and new accounts get
    # fresh upper ids past the bootstrap range.
    labels = list(graph.labels(Side.UPPER))
    product_ids = {
        graph.label(Side.LOWER, v): v for v in range(graph.num_lower)
    }

    def ensure_user(label):
        if label in labels:
            return labels.index(label)
        labels.append(label)
        return len(labels) - 1

    server = PMBCServer(PMBCService(graph).start(), port=0)
    server.start()
    client = PMBCClient(server.url)
    try:
        print(
            f"serving at {server.url}; streaming transactions in "
            f"batches of {BATCH} (alert at >= {ALERT_GROUP} accounts "
            f"x {ALERT_ITEMS} products around seed_account):\n"
        )
        stream = ring_transactions()
        alerted = False
        for start in range(0, len(stream), BATCH):
            batch = stream[start : start + BATCH]
            updates = [
                ("insert", ensure_user(user), product_ids[product])
                for user, product in batch
            ]
            ack = client.update(updates)
            group = client.query(
                "upper", seed_id, tau_u=ALERT_GROUP, tau_l=ALERT_ITEMS
            )["result"]
            status = "-"
            if group is not None:
                members = sorted(labels[int(u)] for u in group["upper"])
                status = f"ALERT: {members} on {len(group['lower'])} products"
            arrivals = ", ".join(f"+({u}, {p})" for u, p in batch)
            print(
                f"  t={start + len(batch):02d}  {arrivals}  "
                f"[applied {ack['applied']}, trees {ack['trees_repaired']}]"
                f"  {status}"
            )
            if group is not None:
                print("\nring confirmed — froze accounts, case sent to review.")
                alerted = True
                break
        if not alerted:
            print("\nstream ended without an alert (unexpected)")
    finally:
        server.shutdown()


if __name__ == "__main__":
    main()
