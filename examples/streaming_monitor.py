#!/usr/bin/env python3
"""Streaming fraud monitoring with the dynamic PMBC-Index.

The paper closes by naming dynamic graphs as future work; this example
exercises the repository's :class:`repro.core.dynamic.DynamicPMBCIndex`
extension in the paper's own anomaly-detection setting: transactions
stream into a user-product graph, each arrival updates only the
affected search trees, and a watch rule re-queries the flagged seed
account after every batch — raising an alert the moment the seed's
group crosses a size threshold.

Run:  python examples/streaming_monitor.py
"""

from __future__ import annotations

import random

from repro import Side, from_edges
from repro.core.dynamic import DynamicPMBCIndex

ALERT_GROUP = 4  # alert when >= 4 coordinated accounts ...
ALERT_ITEMS = 3  # ... push >= 3 common products


def bootstrap_graph(seed: int = 17):
    """Organic history: users each touch a few products."""
    rng = random.Random(seed)
    users = [f"user{i:02d}" for i in range(40)]
    products = [f"prod{i:02d}" for i in range(25)]
    edges = []
    for user in users:
        for product in rng.sample(products, rng.randint(1, 3)):
            edges.append((user, product))
    # The seed account exists but looks harmless so far.
    edges.append(("seed_account", products[0]))
    return from_edges(edges)


def ring_transactions(graph, seed: int = 23):
    """A fraud ring assembling around the seed account, one edge at a time."""
    rng = random.Random(seed)
    ring_users = ["seed_account", "mule_a", "mule_b", "mule_c"]
    ring_products = ["prod03", "prod11", "prod17"]
    stream = [
        (u, p)
        for u in ring_users
        for p in ring_products
    ]
    rng.shuffle(stream)
    return stream


def main() -> None:
    graph = bootstrap_graph()
    print(f"bootstrap graph: {graph}")
    dynamic = DynamicPMBCIndex(graph)
    seed_id = graph.vertex_by_label(Side.UPPER, "seed_account")

    def user_id(label):
        try:
            return dynamic.graph().vertex_by_label(Side.UPPER, label)
        except KeyError:
            return None

    # Label bookkeeping: the dynamic index works on ids, so new users
    # get fresh upper ids past the bootstrap range.
    labels = list(graph.labels(Side.UPPER))
    product_ids = {
        graph.label(Side.LOWER, v): v for v in range(graph.num_lower)
    }

    def ensure_user(label):
        if label in labels:
            return labels.index(label)
        labels.append(label)
        return len(labels) - 1

    print(f"\nstreaming transactions (alert at >= {ALERT_GROUP} accounts "
          f"x {ALERT_ITEMS} products around seed_account):\n")
    for step, (user, product) in enumerate(ring_transactions(graph), start=1):
        uid = ensure_user(user)
        pid = product_ids[product]
        if dynamic.has_edge(uid, pid):
            continue
        rebuilt = dynamic.insert_edge(uid, pid)
        group = dynamic.query(
            Side.UPPER, seed_id, tau_u=ALERT_GROUP, tau_l=ALERT_ITEMS
        )
        status = "-"
        if group is not None:
            members = sorted(labels[u] for u in group.upper)
            status = f"ALERT: {members} on {len(group.lower)} products"
        print(
            f"  t={step:02d}  +({user}, {product})  "
            f"[{rebuilt} trees refreshed]  {status}"
        )
        if group is not None:
            print("\nring confirmed — froze accounts, case sent to review.")
            break
    else:
        print("\nstream ended without an alert (unexpected)")


if __name__ == "__main__":
    main()
