#!/usr/bin/env python3
"""Taste-group recommendation on a user–movie network.

The paper's second motivating application: in a user–movie bipartite
graph, the personalized maximum biclique of a user is the largest group
of users who all watched the same set of movies the user watched — a
"taste group".  Movies watched by the group but not by the target user
are natural recommendations, and the τ parameters trade group size
against movie-set size.

Run:  python examples/recommendation.py
"""

from __future__ import annotations

import random

from repro import Side, from_edges, pmbc_online_star
from repro.corenum.bounds import compute_bounds

GENRES = {
    "scifi": ["Dune", "Arrival", "Interstellar", "Primer", "Moon", "Sunshine"],
    "noir": ["Chinatown", "Memento", "SeVen", "Insomnia", "Heat"],
    "animation": ["Spirited Away", "WALL-E", "Coco", "Totoro", "Up"],
}


def synthesize_watch_graph(seed: int = 3):
    """Users cluster around genres with some cross-genre noise."""
    rng = random.Random(seed)
    edges = []
    for genre, movies in GENRES.items():
        for i in range(12):
            user = f"{genre}_fan{i:02d}"
            watched = rng.sample(movies, rng.randint(3, len(movies)))
            edges += [(user, movie) for movie in watched]
            # Cross-genre noise.
            other = rng.choice([g for g in GENRES if g != genre])
            edges.append((user, rng.choice(GENRES[other])))
    return from_edges(edges)


def recommend(graph, bounds, user: str, tau_group: int, tau_movies: int):
    """Movies the user's taste group watched that the user has not."""
    q = graph.vertex_by_label(Side.UPPER, user)
    group = pmbc_online_star(
        graph, Side.UPPER, q, tau_u=tau_group, tau_l=tau_movies, bounds=bounds
    )
    if group is None:
        return None, []
    watched = {
        graph.label(Side.LOWER, v) for v in graph.neighbors(Side.UPPER, q)
    }
    members, shared_movies = group.with_labels(graph)
    # Pool the group's watch histories and drop what the user has seen.
    pool: set[str] = set()
    for member in group.upper:
        pool.update(
            graph.label(Side.LOWER, v)
            for v in graph.neighbors(Side.UPPER, member)
        )
    recommendations = sorted(pool - watched)
    return (sorted(members), sorted(shared_movies)), recommendations


def main() -> None:
    graph = synthesize_watch_graph()
    print(f"user–movie graph: {graph}")
    bounds = compute_bounds(graph)  # offline, reused by every query

    user = "scifi_fan00"
    for tau_group, tau_movies in ((2, 2), (4, 2), (2, 4)):
        group, recs = recommend(graph, bounds, user, tau_group, tau_movies)
        print(f"\n{user} with τ_group={tau_group}, τ_movies={tau_movies}:")
        if group is None:
            print("  no taste group at these thresholds")
            continue
        members, shared = group
        print(f"  taste group  : {members}")
        print(f"  shared movies: {shared}")
        print(f"  recommend    : {recs if recs else '(nothing new)'}")


if __name__ == "__main__":
    main()
